//! The unified simulation runner: one measurement loop for every spreading process.
//!
//! Historically each measurement helper (`cover_time`, `infection_curve`, the E1–E8
//! experiment files) hand-rolled its own construct-and-step loop. [`Runner`] replaces them
//! with a single loop composed from
//!
//! * **stop conditions** — completion (the default), a round budget, or a target coverage
//!   fraction of the active set, and
//! * **pluggable [`Observer`]s** — per-round probes recording active-count traces
//!   ([`ActiveCountTrace`]), first-visit/cover times ([`FirstVisitTimes`]), cumulative
//!   coverage curves ([`CoverageTrace`]), per-round growth ratios ([`GrowthRatios`]) and
//!   times-to-fraction ([`FractionTimes`]).
//!
//! The runner drives `&mut dyn SpreadingProcess` with `&mut dyn RngCore`, so it works with
//! any process — including ones instantiated dynamically from a
//! [`ProcessSpec`] — and plugs directly into
//! `cobra_stats::parallel::run_trials` closures for deterministic parallel Monte-Carlo.
//!
//! Observers also run across graph-churn epochs: [`run_churned_observed`](crate::fault::run_churned_observed)
//! (see [`crate::fault`]) starts them once and presents a continuous round index over the
//! re-instantiated graphs, so the same trace types work unchanged under churn.
//!
//! Observers are **delta-driven**: per round they consume
//! [`newly_activated`](SpreadingProcess::newly_activated) (`O(|delta|)`) and the `O(1)`
//! [`num_active`](SpreadingProcess::num_active) counter — never a full `O(n)` rescan of the
//! active set. The only full-set walk is the single
//! [`for_each_active`](SpreadingProcess::for_each_active) at `on_start`, which costs
//! `O(|A_0|)` for the frontier processes.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use cobra_graph::{Graph, VertexBitset};

use crate::process::SpreadingProcess;
use crate::spec::ProcessSpec;
use crate::{CoreError, Result};

/// Why a [`Runner::run`] invocation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The process reported [`SpreadingProcess::is_complete`].
    Completed,
    /// The configured coverage target was reached.
    TargetReached,
    /// The round budget ran out first.
    BudgetExhausted,
}

/// The outcome of a single run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Rounds executed when the run stopped.
    pub rounds: usize,
    /// `|A_t|` at the final round.
    pub final_active: usize,
    /// Number of vertices of the instance.
    pub num_vertices: usize,
    /// Why the run stopped.
    pub reason: StopReason,
}

impl RunOutcome {
    /// Whether the run reached its goal (completion or coverage target) within the budget.
    pub fn completed(&self) -> bool {
        self.reason != StopReason::BudgetExhausted
    }

    /// The stopping round as a success value, or `None` on budget exhaustion — the shape
    /// Monte-Carlo aggregation wants (`outcome.completion_rounds().map_or(f64::NAN, ..)`).
    pub fn completion_rounds(&self) -> Option<usize> {
        self.completed().then_some(self.rounds)
    }
}

/// A per-round probe attached to a [`Runner`] run.
///
/// Observers only see the process through `&dyn SpreadingProcess`, so the same observer
/// works for every process kind.
pub trait Observer {
    /// Called once before the first step, with the process in its initial state.
    fn on_start(&mut self, process: &dyn SpreadingProcess) {
        let _ = process;
    }

    /// Called after every step.
    fn on_round(&mut self, process: &dyn SpreadingProcess) {
        let _ = process;
    }
}

/// The unified measurement loop: a round budget plus an optional coverage target.
///
/// `Runner` is plain configuration (`Copy`), so one instance can be shared across all
/// parallel trials of a Monte-Carlo sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Runner {
    max_rounds: usize,
    target_fraction: Option<f64>,
}

impl Runner {
    /// A runner that steps until completion, giving up after `max_rounds` rounds.
    pub fn new(max_rounds: usize) -> Self {
        Runner { max_rounds, target_fraction: None }
    }

    /// Stops as soon as the *active* set reaches `ceil(fraction · n)` vertices instead of
    /// waiting for completion.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] unless `0 < fraction ≤ 1`.
    pub fn until_coverage(mut self, fraction: f64) -> Result<Self> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(CoreError::InvalidParameters {
                reason: format!("coverage fraction {fraction} must be in (0, 1]"),
            });
        }
        self.target_fraction = Some(fraction);
        Ok(self)
    }

    /// The round budget.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// The same runner with a different round budget — used by segmented drivers (churn)
    /// that keep the stop condition but cap each segment.
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Checks the stop conditions; also used by the segmented churn driver
    /// ([`fault::run_churned_observed`](crate::fault::run_churned_observed)), which owns its
    /// own stepping loop but must stop for exactly the same reasons.
    pub(crate) fn goal_reached(&self, process: &dyn SpreadingProcess) -> Option<StopReason> {
        if let Some(fraction) = self.target_fraction {
            let threshold = (fraction * process.num_vertices() as f64).ceil() as usize;
            if process.num_active() >= threshold {
                return Some(StopReason::TargetReached);
            }
        }
        if process.is_complete() {
            return Some(StopReason::Completed);
        }
        None
    }

    /// Runs `process` until a stop condition fires.
    // cobra-lint: draws(bounded)
    pub fn run(&self, process: &mut dyn SpreadingProcess, rng: &mut dyn RngCore) -> RunOutcome {
        self.run_observed(process, rng, &mut [])
    }

    /// Runs `process`, notifying every observer before the first step and after each round.
    // cobra-lint: draws(bounded)
    pub fn run_observed(
        &self,
        process: &mut dyn SpreadingProcess,
        rng: &mut dyn RngCore,
        observers: &mut [&mut dyn Observer],
    ) -> RunOutcome {
        let outcome = |process: &dyn SpreadingProcess, reason: StopReason| RunOutcome {
            rounds: process.round(),
            final_active: process.num_active(),
            num_vertices: process.num_vertices(),
            reason,
        };
        for observer in observers.iter_mut() {
            observer.on_start(process);
        }
        if let Some(reason) = self.goal_reached(process) {
            return outcome(process, reason);
        }
        for _ in 0..self.max_rounds {
            process.step(rng);
            for observer in observers.iter_mut() {
                observer.on_round(process);
            }
            if let Some(reason) = self.goal_reached(process) {
                return outcome(process, reason);
            }
        }
        outcome(process, StopReason::BudgetExhausted)
    }

    /// Builds the process described by `spec` against `graph` and runs it.
    ///
    /// # Errors
    ///
    /// Propagates [`ProcessSpec::build`] validation errors.
    // cobra-lint: draws(bounded)
    pub fn run_spec(
        &self,
        spec: &ProcessSpec,
        graph: &Graph,
        rng: &mut dyn RngCore,
    ) -> Result<RunOutcome> {
        let mut process = spec.build(graph)?;
        Ok(self.run(process.as_mut(), rng))
    }

    /// Runs to the goal and returns the stopping round, turning budget exhaustion into
    /// [`CoreError::RoundBudgetExceeded`] — the contract of the `cover_time` /
    /// `infection_time` measurement helpers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RoundBudgetExceeded`] if the budget runs out first.
    // cobra-lint: draws(bounded)
    pub fn completion_rounds(
        &self,
        process: &mut dyn SpreadingProcess,
        rng: &mut dyn RngCore,
    ) -> Result<usize> {
        self.run(process, rng)
            .completion_rounds()
            .ok_or(CoreError::RoundBudgetExceeded { max_rounds: self.max_rounds })
    }
}

/// Records `|A_t|` after every round, starting with the initial state at index 0.
#[derive(Debug, Clone, Default)]
pub struct ActiveCountTrace {
    trace: Vec<usize>,
}

impl ActiveCountTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded counts (`trace()[t]` = `|A_t|`).
    pub fn trace(&self) -> &[usize] {
        &self.trace
    }

    /// Consumes the observer, returning the trace.
    pub fn into_trace(self) -> Vec<usize> {
        self.trace
    }
}

impl Observer for ActiveCountTrace {
    fn on_start(&mut self, process: &dyn SpreadingProcess) {
        self.trace.clear();
        self.trace.push(process.num_active());
    }

    fn on_round(&mut self, process: &dyn SpreadingProcess) {
        self.trace.push(process.num_active());
    }
}

/// Records the first round each vertex became active — per-vertex hitting times, whose
/// maximum is the cover time.
#[derive(Debug, Clone, Default)]
pub struct FirstVisitTimes {
    first_visit: Vec<Option<usize>>,
}

impl FirstVisitTimes {
    /// An empty observer (sized lazily at `on_start`).
    pub fn new() -> Self {
        Self::default()
    }

    /// First-visit round per vertex (`None` = never active so far).
    pub fn first_visit(&self) -> &[Option<usize>] {
        &self.first_visit
    }

    /// Consumes the observer, returning the per-vertex first-visit rounds.
    pub fn into_first_visit(self) -> Vec<Option<usize>> {
        self.first_visit
    }

    /// The hitting time of `vertex`, if it was reached.
    pub fn hitting_time(&self, vertex: usize) -> Option<usize> {
        self.first_visit.get(vertex).copied().flatten()
    }

    /// Whether every vertex has been active at least once.
    pub fn covered(&self) -> bool {
        !self.first_visit.is_empty() && self.first_visit.iter().all(Option::is_some)
    }

    /// The cover time (maximum first-visit round), if every vertex was reached.
    pub fn cover_time(&self) -> Option<usize> {
        self.first_visit
            .iter()
            .copied()
            .collect::<Option<Vec<usize>>>()
            .map(|times| times.into_iter().max().unwrap_or(0))
    }
}

impl Observer for FirstVisitTimes {
    fn on_start(&mut self, process: &dyn SpreadingProcess) {
        self.first_visit.clear();
        self.first_visit.resize(process.num_vertices(), None);
        let round = process.round();
        let slots = &mut self.first_visit;
        process.for_each_active(&mut |v| {
            if slots[v].is_none() {
                slots[v] = Some(round);
            }
        });
    }

    fn on_round(&mut self, process: &dyn SpreadingProcess) {
        // O(|delta|): only vertices that just became active can gain a first-visit time.
        let round = process.round();
        for &v in process.newly_activated() {
            let slot = &mut self.first_visit[v];
            if slot.is_none() {
                *slot = Some(round);
            }
        }
    }
}

/// Records the cumulative number of distinct vertices ever active (the coverage curve):
/// `trace()[t]` = `|C_0 ∪ … ∪ C_t|`.
#[derive(Debug, Clone, Default)]
pub struct CoverageTrace {
    seen: Option<VertexBitset>,
    num_seen: usize,
    trace: Vec<usize>,
}

impl CoverageTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded cumulative counts.
    pub fn trace(&self) -> &[usize] {
        &self.trace
    }

    /// Consumes the observer, returning the curve.
    pub fn into_trace(self) -> Vec<usize> {
        self.trace
    }

    /// The per-round coverage *increments*: `deltas()[t]` = number of vertices first
    /// covered in round `t` (`deltas()[0]` = `|A_0|`). This is the `O(|delta|)` wire
    /// encoding the serving layer streams — cumulative curves re-sum on the client, so a
    /// result stream never re-sends the monotone prefix.
    pub fn deltas(&self) -> Vec<usize> {
        self.trace
            .iter()
            .enumerate()
            .map(|(t, &c)| if t == 0 { c } else { c - self.trace[t - 1] })
            .collect()
    }
}

impl Observer for CoverageTrace {
    fn on_start(&mut self, process: &dyn SpreadingProcess) {
        let mut seen = VertexBitset::new(process.num_vertices());
        self.num_seen = 0;
        self.trace.clear();
        process.for_each_active(&mut |v| {
            if seen.insert(v) {
                self.num_seen += 1;
            }
        });
        self.seen = Some(seen);
        self.trace.push(self.num_seen);
    }

    fn on_round(&mut self, process: &dyn SpreadingProcess) {
        // O(|delta|): the cumulative union only grows by newly activated vertices.
        let seen = self.seen.as_mut().expect("on_start ran before on_round");
        for &v in process.newly_activated() {
            if seen.insert(v) {
                self.num_seen += 1;
            }
        }
        self.trace.push(self.num_seen);
    }
}

/// Records the per-round growth ratios `|A_{t+1}| / |A_t|` (rounds where `|A_t| = 0` are
/// skipped — the ratio is undefined once a process dies out).
#[derive(Debug, Clone, Default)]
pub struct GrowthRatios {
    previous: usize,
    ratios: Vec<f64>,
}

impl GrowthRatios {
    /// An empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded ratios, one per executed round with a non-empty predecessor set.
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    /// Consumes the observer, returning the ratios.
    pub fn into_ratios(self) -> Vec<f64> {
        self.ratios
    }
}

impl Observer for GrowthRatios {
    fn on_start(&mut self, process: &dyn SpreadingProcess) {
        self.ratios.clear();
        self.previous = process.num_active();
    }

    fn on_round(&mut self, process: &dyn SpreadingProcess) {
        let current = process.num_active();
        if self.previous > 0 {
            self.ratios.push(current as f64 / self.previous as f64);
        }
        self.previous = current;
    }
}

/// Records the first round at which the active set reaches each of a list of coverage
/// fractions — the "time to reach 25% / 50% / 90%" milestones of the phase experiments.
#[derive(Debug, Clone)]
pub struct FractionTimes {
    fractions: Vec<f64>,
    thresholds: Vec<usize>,
    times: Vec<Option<usize>>,
}

impl FractionTimes {
    /// An observer for the given coverage fractions (each in `(0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] for a fraction outside `(0, 1]`.
    pub fn new(fractions: &[f64]) -> Result<Self> {
        for &fraction in fractions {
            if !(fraction > 0.0 && fraction <= 1.0) {
                return Err(CoreError::InvalidParameters {
                    reason: format!("coverage fraction {fraction} must be in (0, 1]"),
                });
            }
        }
        Ok(FractionTimes {
            fractions: fractions.to_vec(),
            thresholds: Vec::new(),
            times: vec![None; fractions.len()],
        })
    }

    /// `times()[i]` = first round with `|A_t| ≥ ceil(fractions[i] · n)`, if reached.
    pub fn times(&self) -> &[Option<usize>] {
        &self.times
    }

    fn record(&mut self, process: &dyn SpreadingProcess) {
        let round = process.round();
        let active = process.num_active();
        for (time, &threshold) in self.times.iter_mut().zip(&self.thresholds) {
            if time.is_none() && active >= threshold {
                *time = Some(round);
            }
        }
    }
}

impl Observer for FractionTimes {
    fn on_start(&mut self, process: &dyn SpreadingProcess) {
        let n = process.num_vertices() as f64;
        self.thresholds =
            self.fractions.iter().map(|fraction| (fraction * n).ceil() as usize).collect();
        self.times.fill(None);
        self.record(process);
    }

    fn on_round(&mut self, process: &dyn SpreadingProcess) {
        self.record(process);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProcessSpec;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn runner_completes_and_reports() {
        let graph = generators::complete(64).unwrap();
        let spec = ProcessSpec::cobra(2).unwrap();
        let outcome = Runner::new(10_000).run_spec(&spec, &graph, &mut rng(1)).unwrap();
        assert!(outcome.completed());
        assert_eq!(outcome.reason, StopReason::Completed);
        assert_eq!(outcome.num_vertices, 64);
        assert!(outcome.rounds > 0);
        assert_eq!(outcome.completion_rounds(), Some(outcome.rounds));
    }

    #[test]
    fn runner_budget_exhaustion() {
        let graph = generators::cycle(64).unwrap();
        let spec = ProcessSpec::cobra(2).unwrap();
        let outcome = Runner::new(2).run_spec(&spec, &graph, &mut rng(2)).unwrap();
        assert_eq!(outcome.reason, StopReason::BudgetExhausted);
        assert_eq!(outcome.rounds, 2);
        assert_eq!(outcome.completion_rounds(), None);
        let mut process = spec.build(&graph).unwrap();
        assert_eq!(
            Runner::new(2).completion_rounds(process.as_mut(), &mut rng(2)),
            Err(CoreError::RoundBudgetExceeded { max_rounds: 2 })
        );
    }

    #[test]
    fn coverage_target_stops_early() {
        let graph = generators::complete(128).unwrap();
        let spec = ProcessSpec::bips(2).unwrap();
        let full = Runner::new(100_000).run_spec(&spec, &graph, &mut rng(3)).unwrap();
        let half = Runner::new(100_000)
            .until_coverage(0.5)
            .unwrap()
            .run_spec(&spec, &graph, &mut rng(3))
            .unwrap();
        assert_eq!(half.reason, StopReason::TargetReached);
        assert!(half.rounds <= full.rounds);
        assert!(half.final_active >= 64);
        assert!(Runner::new(10).until_coverage(0.0).is_err());
        assert!(Runner::new(10).until_coverage(1.5).is_err());
    }

    #[test]
    fn coverage_target_of_an_already_satisfied_process_is_zero_rounds() {
        let graph = generators::complete(16).unwrap();
        let spec = ProcessSpec::bips(2).unwrap();
        let runner = Runner::new(100).until_coverage(1.0 / 16.0).unwrap();
        let outcome = runner.run_spec(&spec, &graph, &mut rng(4)).unwrap();
        assert_eq!(outcome.rounds, 0);
        assert_eq!(outcome.reason, StopReason::TargetReached);
    }

    #[test]
    fn observers_record_traces() {
        // BIPS rather than COBRA: its completion condition (`|A_t| = n`) guarantees every
        // coverage fraction of the *active* set is eventually reached, which the
        // FractionTimes assertions below rely on.
        let graph = generators::hypercube(6).unwrap();
        let spec = ProcessSpec::bips(2).unwrap();
        let mut process = spec.build(&graph).unwrap();
        let mut counts = ActiveCountTrace::new();
        let mut visits = FirstVisitTimes::new();
        let mut coverage = CoverageTrace::new();
        let mut growth = GrowthRatios::new();
        let mut fractions = FractionTimes::new(&[0.25, 0.75]).unwrap();
        let outcome = Runner::new(100_000).run_observed(
            process.as_mut(),
            &mut rng(5),
            &mut [&mut counts, &mut visits, &mut coverage, &mut growth, &mut fractions],
        );
        assert!(outcome.completed());
        // Traces hold the initial state plus one entry per round.
        assert_eq!(counts.trace().len(), outcome.rounds + 1);
        assert_eq!(counts.trace()[0], 1);
        assert_eq!(coverage.trace().len(), outcome.rounds + 1);
        assert_eq!(*coverage.trace().last().unwrap(), 64);
        assert!(coverage.trace().windows(2).all(|w| w[1] >= w[0]));
        // First-visit times: start at round 0, all visited, max = cover time <= rounds.
        assert_eq!(visits.hitting_time(0), Some(0));
        assert!(visits.covered());
        assert!(visits.cover_time().unwrap() <= outcome.rounds);
        // Growth ratios exist for every round (the COBRA active set never dies).
        assert_eq!(growth.ratios().len(), outcome.rounds);
        assert!(growth.ratios().iter().all(|&r| r > 0.0));
        // Milestones are ordered.
        let quarter = fractions.times()[0].unwrap();
        let three_quarters = fractions.times()[1].unwrap();
        assert!(quarter <= three_quarters);
    }

    #[test]
    fn coverage_deltas_resum_to_the_cumulative_trace() {
        let graph = generators::hypercube(5).unwrap();
        let spec = ProcessSpec::cobra(2).unwrap();
        let mut process = spec.build(&graph).unwrap();
        let mut coverage = CoverageTrace::new();
        let outcome =
            Runner::new(100_000).run_observed(process.as_mut(), &mut rng(9), &mut [&mut coverage]);
        assert!(outcome.completed());
        let deltas = coverage.deltas();
        assert_eq!(deltas.len(), coverage.trace().len());
        assert_eq!(deltas[0], 1, "delta 0 is |A_0|");
        let mut resummed = 0usize;
        for (t, &d) in deltas.iter().enumerate() {
            resummed += d;
            assert_eq!(resummed, coverage.trace()[t], "prefix sums rebuild the curve");
        }
    }

    #[test]
    fn observers_reset_between_runs() {
        let graph = generators::complete(32).unwrap();
        let spec = ProcessSpec::cobra(2).unwrap();
        let mut counts = ActiveCountTrace::new();
        for seed in 0..2 {
            let mut process = spec.build(&graph).unwrap();
            let outcome = Runner::new(10_000).run_observed(
                process.as_mut(),
                &mut rng(seed),
                &mut [&mut counts],
            );
            assert_eq!(counts.trace().len(), outcome.rounds + 1, "observer must self-reset");
        }
    }

    #[test]
    fn observers_never_rescan_the_active_set() {
        use cobra_graph::{VertexBitset, VertexId};
        use std::cell::Cell;

        /// Counts how often observers touch the full active set. The sparse-frontier contract
        /// is that per-round observation is O(|delta|): `active()` must never be called and
        /// `for_each_active` only during `on_start` — in particular on every round where
        /// fewer than n/64 vertices changed (here: all of them), no observer may iterate the
        /// full vertex set.
        struct Instrumented<'g> {
            inner: crate::cobra::CobraProcess<'g>,
            active_calls: Cell<usize>,
            sweeps: Cell<usize>,
        }

        impl SpreadingProcess for Instrumented<'_> {
            fn step_faulted(
                &mut self,
                rng: &mut dyn RngCore,
                faults: &crate::fault::StepFaults<'_>,
            ) {
                self.inner.step_faulted(rng, faults)
            }
            fn round(&self) -> usize {
                self.inner.round()
            }
            fn active(&self) -> &VertexBitset {
                self.active_calls.set(self.active_calls.get() + 1);
                self.inner.active()
            }
            fn num_active(&self) -> usize {
                self.inner.num_active()
            }
            fn newly_activated(&self) -> &[VertexId] {
                self.inner.newly_activated()
            }
            fn for_each_active(&self, f: &mut dyn FnMut(VertexId)) {
                self.sweeps.set(self.sweeps.get() + 1);
                self.inner.for_each_active(f)
            }
            fn num_vertices(&self) -> usize {
                self.inner.num_vertices()
            }
            fn is_complete(&self) -> bool {
                self.inner.is_complete()
            }
            fn reset(&mut self) {
                self.inner.reset()
            }
        }

        let graph = {
            let mut gen_rng = rng(20);
            cobra_graph::generators::connected_random_regular(512, 4, &mut gen_rng).unwrap()
        };
        let inner =
            crate::cobra::CobraProcess::new(&graph, 0, crate::cobra::Branching::fixed(2).unwrap())
                .unwrap();
        let mut process = Instrumented { inner, active_calls: Cell::new(0), sweeps: Cell::new(0) };
        let mut counts = ActiveCountTrace::new();
        let mut visits = FirstVisitTimes::new();
        let mut coverage = CoverageTrace::new();
        let mut growth = GrowthRatios::new();
        let mut fractions = FractionTimes::new(&[0.5]).unwrap();
        let outcome = Runner::new(100_000).run_observed(
            &mut process,
            &mut rng(21),
            &mut [&mut counts, &mut visits, &mut coverage, &mut growth, &mut fractions],
        );
        assert!(outcome.completed());
        assert!(outcome.rounds > 0);
        assert_eq!(
            process.active_calls.get(),
            0,
            "no observer (or runner loop) may rescan the dense active set"
        );
        assert_eq!(
            process.sweeps.get(),
            2,
            "only FirstVisitTimes and CoverageTrace walk the O(|A_0|) initial set, once each"
        );
        // The delta-driven traces are still complete and correct.
        assert_eq!(counts.trace().len(), outcome.rounds + 1);
        assert!(visits.covered());
        assert_eq!(*coverage.trace().last().unwrap(), 512);
    }

    #[test]
    fn runner_drives_every_spec_kind() {
        let graph = generators::complete(16).unwrap();
        let runner = Runner::new(100_000);
        for spec in ProcessSpec::examples() {
            let outcome = runner.run_spec(&spec, &graph, &mut rng(11)).unwrap();
            assert!(outcome.completed(), "{spec} did not complete on K_16: {outcome:?}");
        }
    }
}
