//! Verification of the COBRA ↔ BIPS duality (Theorem 4).
//!
//! Theorem 4 of the paper states that for every vertex `v`, vertex set `C` and round `t ≥ 0`,
//!
//! ```text
//! P̂( Hit_C(v) > t | C_0 = C )  =  P( C ∩ A_t = ∅ | A_0 = {v} )
//! ```
//!
//! where the left-hand side refers to the COBRA process started from `C` (with `Hit_C(v)` the
//! first round in which `v` is active) and the right-hand side to the BIPS process with
//! persistent source `v`. This module verifies the identity two ways:
//!
//! * **exactly**, by dynamic programming over the full distribution of the active/infected set
//!   (feasible for graphs with at most [`EXACT_LIMIT`] vertices), and
//! * **statistically**, by comparing Monte-Carlo estimates of both sides with a two-proportion
//!   z-test on larger graphs.

use std::collections::BTreeMap;

use cobra_graph::{Graph, VertexId};
use rand::Rng;

use crate::bips::BipsProcess;
use crate::cobra::{Branching, CobraProcess};
use crate::process::SpreadingProcess;
use crate::{CoreError, Result};

/// Largest number of vertices supported by the exact subset dynamic programs.
pub const EXACT_LIMIT: usize = 14;

/// Bitmask representation of a vertex subset (vertex `i` ↔ bit `i`).
type Mask = u32;

// The DP masks silently wrap (`1 << v` for `v >= Mask::BITS`) beyond the mask width, so the
// practical DP limit must never be raised past it without also widening `Mask`.
const _: () = assert!(EXACT_LIMIT <= Mask::BITS as usize);

fn mask_of(vertices: &[VertexId]) -> Mask {
    debug_assert!(
        vertices.iter().all(|&v| v < Mask::BITS as usize),
        "mask_of called with a vertex beyond Mask::BITS — validate_exact must run first"
    );
    vertices.iter().fold(0, |m, &v| m | (1 << v))
}

fn validate_exact(graph: &Graph) -> Result<()> {
    let n = graph.num_vertices();
    if n == 0 {
        return Err(CoreError::UnsuitableGraph { reason: "empty graph".to_string() });
    }
    // Guard the mask construction explicitly: `1 << v` on `Mask` would silently wrap for
    // vertices at or beyond the mask width, corrupting every subset in the DP.
    if n > Mask::BITS as usize {
        return Err(CoreError::InvalidParameters {
            reason: format!(
                "graph has {n} vertices but the exact duality DP masks hold at most {} \
                 (and the practical DP limit is {EXACT_LIMIT})",
                Mask::BITS
            ),
        });
    }
    if n > EXACT_LIMIT {
        return Err(CoreError::TooLargeForExact { num_vertices: n, limit: EXACT_LIMIT });
    }
    Ok(())
}

/// The distribution of the *set* of neighbours chosen by vertex `u` in one round, as a map
/// from neighbour-set mask to probability.
fn choice_set_distribution(
    graph: &Graph,
    u: VertexId,
    branching: Branching,
) -> BTreeMap<Mask, f64> {
    let degree = graph.degree(u);
    if degree == 0 {
        let mut dist = BTreeMap::new();
        dist.insert(0, 1.0);
        return dist;
    }
    let p_each = 1.0 / degree as f64;
    let one_sample = || -> BTreeMap<Mask, f64> {
        let mut dist = BTreeMap::new();
        for w in graph.neighbor_iter(u) {
            *dist.entry(1 << w).or_insert(0.0) += p_each;
        }
        dist
    };
    let convolve_one = |dist: &BTreeMap<Mask, f64>| -> BTreeMap<Mask, f64> {
        let mut next: BTreeMap<Mask, f64> = BTreeMap::new();
        for (&mask, &p) in dist {
            for w in graph.neighbor_iter(u) {
                *next.entry(mask | (1 << w)).or_insert(0.0) += p * p_each;
            }
        }
        next
    };
    match branching {
        Branching::Fixed { k } => {
            let mut dist = one_sample();
            for _ in 1..k {
                dist = convolve_one(&dist);
            }
            dist
        }
        // Degree-proportional budgets resolve to the fixed factor min(deg(u), cap) at
        // each vertex — exactly what `CobraProcess` resolves at construction.
        Branching::PerVertex { cap } => {
            let k = u32::try_from(degree).unwrap_or(u32::MAX).min(cap);
            let mut dist = one_sample();
            for _ in 1..k {
                dist = convolve_one(&dist);
            }
            dist
        }
        Branching::Fractional { rho } => {
            // With probability 1-rho a single sample, with probability rho two samples.
            let single = one_sample();
            let double = convolve_one(&single);
            let mut dist: BTreeMap<Mask, f64> = BTreeMap::new();
            for (&mask, &p) in &single {
                *dist.entry(mask).or_insert(0.0) += (1.0 - rho) * p;
            }
            for (&mask, &p) in &double {
                *dist.entry(mask).or_insert(0.0) += rho * p;
            }
            dist
        }
    }
}

/// Exact tail probabilities `P̂(Hit_C(v) > t | C_0 = C)` of the COBRA process for
/// `t = 0, 1, …, t_max`.
///
/// # Errors
///
/// Returns [`CoreError::TooLargeForExact`] for graphs above [`EXACT_LIMIT`] vertices,
/// [`CoreError::UnsuitableGraph`] for the empty graph, [`CoreError::VertexOutOfRange`] if `v`
/// or a start vertex is out of range, and [`CoreError::InvalidParameters`] for an empty `C`.
pub fn exact_cobra_hit_tail(
    graph: &Graph,
    start_set: &[VertexId],
    target: VertexId,
    branching: Branching,
    t_max: usize,
) -> Result<Vec<f64>> {
    validate_exact(graph)?;
    let n = graph.num_vertices();
    if target >= n {
        return Err(CoreError::VertexOutOfRange { vertex: target, num_vertices: n });
    }
    if start_set.is_empty() {
        return Err(CoreError::InvalidParameters {
            reason: "start set must not be empty".to_string(),
        });
    }
    if let Some(&bad) = start_set.iter().find(|&&v| v >= n) {
        return Err(CoreError::VertexOutOfRange { vertex: bad, num_vertices: n });
    }

    let target_bit: Mask = 1 << target;
    let start = mask_of(start_set);
    // Pre-compute the per-vertex one-round choice-set distributions.
    let choices: Vec<BTreeMap<Mask, f64>> =
        (0..n).map(|u| choice_set_distribution(graph, u, branching)).collect();

    // Distribution over the current active set, restricted to trajectories that have not yet
    // hit the target. Mass that reaches a set containing the target is dropped (absorbed).
    let mut tails = Vec::with_capacity(t_max + 1);
    let mut dist: BTreeMap<Mask, f64> = BTreeMap::new();
    if start & target_bit == 0 {
        dist.insert(start, 1.0);
    }
    tails.push(dist.values().sum());

    for _ in 0..t_max {
        let mut next: BTreeMap<Mask, f64> = BTreeMap::new();
        for (&current, &p) in &dist {
            // Fold the per-vertex choice distributions of the active vertices into the
            // distribution of the next active set.
            let mut partial: BTreeMap<Mask, f64> = BTreeMap::new();
            partial.insert(0, p);
            let mut u_mask = current;
            while u_mask != 0 {
                let u = u_mask.trailing_zeros() as usize;
                u_mask &= u_mask - 1;
                let mut folded: BTreeMap<Mask, f64> = BTreeMap::new();
                for (&acc_mask, &acc_p) in &partial {
                    for (&choice_mask, &choice_p) in &choices[u] {
                        *folded.entry(acc_mask | choice_mask).or_insert(0.0) += acc_p * choice_p;
                    }
                }
                partial = folded;
            }
            for (&next_mask, &next_p) in &partial {
                if next_mask & target_bit == 0 {
                    *next.entry(next_mask).or_insert(0.0) += next_p;
                }
            }
        }
        dist = next;
        tails.push(dist.values().sum());
    }
    Ok(tails)
}

/// Exact avoidance probabilities `P(C ∩ A_t = ∅ | A_0 = {source})` of the BIPS process for
/// `t = 0, 1, …, t_max`.
///
/// # Errors
///
/// Same error cases as [`exact_cobra_hit_tail`] (with `source` in place of the target vertex).
pub fn exact_bips_avoidance(
    graph: &Graph,
    source: VertexId,
    avoid_set: &[VertexId],
    branching: Branching,
    t_max: usize,
) -> Result<Vec<f64>> {
    validate_exact(graph)?;
    if matches!(branching, Branching::PerVertex { .. }) {
        // Mirrors `BipsProcess::new`: a per-sender degree budget has no meaning for pulls.
        return Err(CoreError::InvalidParameters {
            reason: "k=deg budgets are a COBRA (push) feature and undefined for BIPS".to_string(),
        });
    }
    let n = graph.num_vertices();
    if source >= n {
        return Err(CoreError::VertexOutOfRange { vertex: source, num_vertices: n });
    }
    if avoid_set.is_empty() {
        return Err(CoreError::InvalidParameters {
            reason: "avoid set must not be empty".to_string(),
        });
    }
    if let Some(&bad) = avoid_set.iter().find(|&&v| v >= n) {
        return Err(CoreError::VertexOutOfRange { vertex: bad, num_vertices: n });
    }

    let avoid = mask_of(avoid_set);
    let source_bit: Mask = 1 << source;

    // Probability that vertex u samples at least one infected neighbour, as a function of the
    // fraction q = d_A(u)/d(u), matching the process definition (and Corollary 1 for the
    // fractional variant).
    let infect_probability = |u: VertexId, infected: Mask| -> f64 {
        let degree = graph.degree(u);
        if degree == 0 {
            return 0.0;
        }
        let hits = graph.neighbors(u).iter().filter(|&&w| infected & (1 << w) != 0).count();
        let q = hits as f64 / degree as f64;
        match branching {
            Branching::Fixed { k } => 1.0 - (1.0 - q).powi(k as i32),
            Branching::Fractional { rho } => 1.0 - (1.0 - q) * (1.0 - rho * q),
            Branching::PerVertex { .. } => unreachable!("rejected at entry"),
        }
    };

    let mut dist: BTreeMap<Mask, f64> = BTreeMap::new();
    dist.insert(source_bit, 1.0);
    let mut avoidance = Vec::with_capacity(t_max + 1);
    let avoid_probability = |dist: &BTreeMap<Mask, f64>| -> f64 {
        dist.iter().filter(|(&mask, _)| mask & avoid == 0).map(|(_, &p)| p).sum()
    };
    avoidance.push(avoid_probability(&dist));

    for _ in 0..t_max {
        let mut next: BTreeMap<Mask, f64> = BTreeMap::new();
        for (&current, &p) in &dist {
            // Each non-source vertex is infected independently; fold the Bernoulli choices.
            let mut partial: Vec<(Mask, f64)> = vec![(source_bit, p)];
            for u in 0..n {
                if u == source {
                    continue;
                }
                let q = infect_probability(u, current);
                if q == 0.0 {
                    continue;
                }
                let bit = 1 << u;
                let mut folded = Vec::with_capacity(partial.len() * 2);
                for &(mask, mass) in &partial {
                    if q < 1.0 {
                        folded.push((mask, mass * (1.0 - q)));
                    }
                    folded.push((mask | bit, mass * q));
                }
                partial = folded;
            }
            for (mask, mass) in partial {
                *next.entry(mask).or_insert(0.0) += mass;
            }
        }
        dist = next;
        avoidance.push(avoid_probability(&dist));
    }
    Ok(avoidance)
}

/// Result of an exact duality check.
#[derive(Debug, Clone, PartialEq)]
pub struct DualityReport {
    /// Largest absolute difference between the two sides over all rounds checked.
    pub max_abs_difference: f64,
    /// Number of `(C, v, t)` combinations compared.
    pub comparisons: usize,
}

/// Exactly verifies Theorem 4 on a small graph for **all** ordered pairs `(u, v)` of distinct
/// vertices with `C = {u}`, for every `t ≤ t_max`, returning the worst absolute discrepancy.
///
/// # Errors
///
/// Same error cases as the exact computations.
pub fn verify_duality_exact(
    graph: &Graph,
    branching: Branching,
    t_max: usize,
) -> Result<DualityReport> {
    validate_exact(graph)?;
    let n = graph.num_vertices();
    let mut worst = 0.0f64;
    let mut comparisons = 0usize;
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            let cobra = exact_cobra_hit_tail(graph, &[u], v, branching, t_max)?;
            let bips = exact_bips_avoidance(graph, v, &[u], branching, t_max)?;
            for (a, b) in cobra.iter().zip(bips.iter()) {
                worst = worst.max((a - b).abs());
                comparisons += 1;
            }
        }
    }
    Ok(DualityReport { max_abs_difference: worst, comparisons })
}

/// Exactly verifies Theorem 4 for a specific start set `C` and target `v`.
///
/// # Errors
///
/// Same error cases as the exact computations.
pub fn verify_duality_exact_for_set(
    graph: &Graph,
    start_set: &[VertexId],
    target: VertexId,
    branching: Branching,
    t_max: usize,
) -> Result<DualityReport> {
    let cobra = exact_cobra_hit_tail(graph, start_set, target, branching, t_max)?;
    let bips = exact_bips_avoidance(graph, target, start_set, branching, t_max)?;
    let mut worst = 0.0f64;
    for (a, b) in cobra.iter().zip(bips.iter()) {
        worst = worst.max((a - b).abs());
    }
    Ok(DualityReport { max_abs_difference: worst, comparisons: cobra.len() })
}

/// Monte-Carlo estimate of `P̂(Hit_C(v) > t)` for the COBRA process.
///
/// # Errors
///
/// Propagates construction errors from [`CobraProcess::with_start_set`].
// cobra-lint: draws(bounded)
pub fn estimate_cobra_hit_tail<R: Rng + ?Sized>(
    graph: &Graph,
    start_set: &[VertexId],
    target: VertexId,
    branching: Branching,
    t: usize,
    trials: usize,
    mut rng: &mut R,
) -> Result<f64> {
    if target >= graph.num_vertices() {
        return Err(CoreError::VertexOutOfRange {
            vertex: target,
            num_vertices: graph.num_vertices(),
        });
    }
    let mut not_hit = 0usize;
    for _ in 0..trials {
        let mut process = CobraProcess::with_start_set(graph, start_set, branching)?;
        let mut hit = process.active().contains(target);
        for _ in 0..t {
            if hit {
                break;
            }
            process.step(&mut rng);
            if process.active().contains(target) {
                hit = true;
            }
        }
        if !hit {
            not_hit += 1;
        }
    }
    Ok(not_hit as f64 / trials.max(1) as f64)
}

/// Monte-Carlo estimate of `P(C ∩ A_t = ∅ | A_0 = {source})` for the BIPS process.
///
/// # Errors
///
/// Propagates construction errors from [`BipsProcess::new`].
// cobra-lint: draws(bounded)
pub fn estimate_bips_avoidance<R: Rng + ?Sized>(
    graph: &Graph,
    source: VertexId,
    avoid_set: &[VertexId],
    branching: Branching,
    t: usize,
    trials: usize,
    mut rng: &mut R,
) -> Result<f64> {
    if let Some(&bad) = avoid_set.iter().find(|&&v| v >= graph.num_vertices()) {
        return Err(CoreError::VertexOutOfRange {
            vertex: bad,
            num_vertices: graph.num_vertices(),
        });
    }
    let mut avoided = 0usize;
    for _ in 0..trials {
        let mut process = BipsProcess::new(graph, source, branching)?;
        for _ in 0..t {
            process.step(&mut rng);
        }
        if avoid_set.iter().all(|&v| !process.is_infected(v)) {
            avoided += 1;
        }
    }
    Ok(avoided as f64 / trials.max(1) as f64)
}

/// Result of a Monte-Carlo duality comparison at a single round `t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloDuality {
    /// Estimated COBRA tail probability.
    pub cobra_tail: f64,
    /// Estimated BIPS avoidance probability.
    pub bips_avoidance: f64,
    /// Two-proportion z statistic (0 when both estimates are degenerate).
    pub z_score: f64,
    /// Trials used per side.
    pub trials: usize,
}

impl MonteCarloDuality {
    /// Whether the two estimates are statistically compatible at the given |z| threshold
    /// (e.g. `3.0` for a ~99.7% two-sided test).
    pub fn compatible(&self, z_threshold: f64) -> bool {
        self.z_score.abs() <= z_threshold
    }
}

/// Compares Monte-Carlo estimates of both sides of Theorem 4 at round `t` with a
/// two-proportion z-test.
///
/// # Errors
///
/// Propagates the errors of the two estimators.
// cobra-lint: draws(bounded)
pub fn verify_duality_monte_carlo<R: Rng + ?Sized>(
    graph: &Graph,
    start_set: &[VertexId],
    target: VertexId,
    branching: Branching,
    t: usize,
    trials: usize,
    rng: &mut R,
) -> Result<MonteCarloDuality> {
    let cobra_tail = estimate_cobra_hit_tail(graph, start_set, target, branching, t, trials, rng)?;
    let bips_avoidance =
        estimate_bips_avoidance(graph, target, start_set, branching, t, trials, rng)?;
    let pooled = (cobra_tail + bips_avoidance) / 2.0;
    let variance = pooled * (1.0 - pooled) * 2.0 / trials.max(1) as f64;
    let z_score = if variance > 0.0 {
        (cobra_tail - bips_avoidance) / variance.sqrt()
    } else {
        // Both estimates are 0 or 1; identical means compatible, different means infinitely
        // incompatible.
        if (cobra_tail - bips_avoidance).abs() < f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        }
    };
    Ok(MonteCarloDuality { cobra_tail, bips_avoidance, z_score, trials })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    fn k2() -> Branching {
        Branching::fixed(2).unwrap()
    }

    #[test]
    fn choice_distribution_sums_to_one_and_respects_neighbourhoods() {
        let g = generators::petersen().unwrap();
        for &branching in &[
            k2(),
            Branching::fixed(1).unwrap(),
            Branching::fixed(3).unwrap(),
            Branching::fractional(0.3).unwrap(),
        ] {
            for u in g.vertices() {
                let dist = choice_set_distribution(&g, u, branching);
                let total: f64 = dist.values().sum();
                assert!((total - 1.0).abs() < 1e-12);
                let neighbourhood = mask_of(g.neighbors(u));
                for &mask in dist.keys() {
                    assert_eq!(mask & !neighbourhood, 0, "choices must be neighbours of {u}");
                    assert!(mask != 0);
                }
            }
        }
    }

    #[test]
    fn exact_tails_are_probabilities_and_monotone() {
        let g = generators::cycle(6).unwrap();
        let tails = exact_cobra_hit_tail(&g, &[0], 3, k2(), 12).unwrap();
        assert_eq!(tails.len(), 13);
        assert!((tails[0] - 1.0).abs() < 1e-12);
        for w in tails.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "tail probabilities must be non-increasing");
        }
        assert!(tails.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        // Hitting a vertex already in C has tail 0.
        let tails = exact_cobra_hit_tail(&g, &[3], 3, k2(), 4).unwrap();
        assert!(tails.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn exact_bips_avoidance_is_monotone_in_t() {
        // Avoidance can only decrease in t on average? Not strictly — but from a single source
        // on a connected graph with the persistent-source monotone coupling it is in fact
        // non-increasing for singleton avoid sets by the duality (tails are non-increasing).
        let g = generators::diamond().unwrap();
        let avoid = exact_bips_avoidance(&g, 0, &[3], k2(), 10).unwrap();
        assert!((avoid[0] - 1.0).abs() < 1e-12);
        for w in avoid.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn duality_exact_on_triangle() {
        let g = generators::triangle().unwrap();
        let report = verify_duality_exact(&g, k2(), 8).unwrap();
        assert!(report.max_abs_difference < 1e-10, "difference {}", report.max_abs_difference);
        assert_eq!(report.comparisons, 6 * 9);
    }

    #[test]
    fn duality_exact_on_cycle_and_path() {
        let cycle = generators::cycle(6).unwrap();
        let report = verify_duality_exact(&cycle, k2(), 10).unwrap();
        assert!(
            report.max_abs_difference < 1e-10,
            "cycle difference {}",
            report.max_abs_difference
        );

        let path = generators::path(5).unwrap();
        let report = verify_duality_exact(&path, k2(), 10).unwrap();
        assert!(report.max_abs_difference < 1e-10, "path difference {}", report.max_abs_difference);
    }

    #[test]
    fn duality_exact_with_k1_and_k3() {
        let g = generators::diamond().unwrap();
        for k in [1u32, 3] {
            let report = verify_duality_exact(&g, Branching::fixed(k).unwrap(), 8).unwrap();
            assert!(
                report.max_abs_difference < 1e-10,
                "k = {k} difference {}",
                report.max_abs_difference
            );
        }
    }

    #[test]
    fn duality_exact_with_fractional_branching() {
        let g = generators::bull().unwrap();
        let report = verify_duality_exact(&g, Branching::fractional(0.4).unwrap(), 8).unwrap();
        assert!(report.max_abs_difference < 1e-10, "difference {}", report.max_abs_difference);
    }

    #[test]
    fn duality_exact_for_non_singleton_start_sets() {
        let g = generators::cycle(7).unwrap();
        let report = verify_duality_exact_for_set(&g, &[1, 4], 6, k2(), 10).unwrap();
        assert!(report.max_abs_difference < 1e-10, "difference {}", report.max_abs_difference);
        let report = verify_duality_exact_for_set(&g, &[0, 2, 5], 3, k2(), 10).unwrap();
        assert!(report.max_abs_difference < 1e-10);
    }

    #[test]
    fn exact_rejects_graphs_beyond_the_mask_width() {
        // 1 << v would silently wrap for v >= Mask::BITS; the guard must reject such graphs
        // with a parameter error (not the softer "too large for exact" budget error).
        let beyond_mask = generators::cycle(Mask::BITS as usize + 8).unwrap();
        for result in [
            verify_duality_exact(&beyond_mask, k2(), 2).map(|_| ()),
            exact_cobra_hit_tail(&beyond_mask, &[0], 1, k2(), 2).map(|_| ()),
            exact_bips_avoidance(&beyond_mask, 0, &[1], k2(), 2).map(|_| ()),
        ] {
            match result {
                Err(CoreError::InvalidParameters { reason }) => {
                    assert!(reason.contains("mask"), "unexpected reason: {reason}");
                }
                other => panic!("expected the mask-width guard to fire, got {other:?}"),
            }
        }
    }

    #[test]
    fn exact_rejects_large_graphs_and_bad_inputs() {
        let big = generators::complete(EXACT_LIMIT + 1).unwrap();
        assert!(matches!(
            verify_duality_exact(&big, k2(), 3),
            Err(CoreError::TooLargeForExact { .. })
        ));
        let g = generators::triangle().unwrap();
        assert!(matches!(
            exact_cobra_hit_tail(&g, &[0], 9, k2(), 3),
            Err(CoreError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            exact_cobra_hit_tail(&g, &[], 1, k2(), 3),
            Err(CoreError::InvalidParameters { .. })
        ));
        assert!(matches!(
            exact_bips_avoidance(&g, 7, &[0], k2(), 3),
            Err(CoreError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            exact_bips_avoidance(&g, 0, &[], k2(), 3),
            Err(CoreError::InvalidParameters { .. })
        ));
        assert!(matches!(
            exact_bips_avoidance(&cobra_graph::Graph::default(), 0, &[0], k2(), 3),
            Err(CoreError::UnsuitableGraph { .. })
        ));
    }

    #[test]
    fn monte_carlo_estimates_match_exact_values_on_a_small_graph() {
        let g = generators::petersen().unwrap();
        let exact_cobra = exact_cobra_hit_tail(&g, &[0], 7, k2(), 4).unwrap();
        let mut r = rng(1);
        let estimate = estimate_cobra_hit_tail(&g, &[0], 7, k2(), 4, 4000, &mut r).unwrap();
        assert!(
            (estimate - exact_cobra[4]).abs() < 0.04,
            "estimate {estimate} vs exact {}",
            exact_cobra[4]
        );
        let exact_bips = exact_bips_avoidance(&g, 7, &[0], k2(), 4).unwrap();
        let estimate = estimate_bips_avoidance(&g, 7, &[0], k2(), 4, 4000, &mut r).unwrap();
        assert!(
            (estimate - exact_bips[4]).abs() < 0.04,
            "estimate {estimate} vs exact {}",
            exact_bips[4]
        );
    }

    #[test]
    fn monte_carlo_duality_is_compatible_on_a_larger_graph() {
        let mut r = rng(2);
        let g = generators::connected_random_regular(64, 3, &mut r).unwrap();
        let check = verify_duality_monte_carlo(&g, &[0], 17, k2(), 5, 3000, &mut r).unwrap();
        assert!(
            check.compatible(4.0),
            "z = {} (cobra {} vs bips {})",
            check.z_score,
            check.cobra_tail,
            check.bips_avoidance
        );
        assert_eq!(check.trials, 3000);
    }

    #[test]
    fn monte_carlo_duality_flags_mismatched_processes() {
        // Deliberately compare COBRA at t = 1 with BIPS at a much later round: the identity
        // does not hold across different t, so the z-test should reject.
        let mut r = rng(3);
        let g = generators::complete(32).unwrap();
        let cobra = estimate_cobra_hit_tail(&g, &[0], 5, k2(), 1, 3000, &mut r).unwrap();
        let bips = estimate_bips_avoidance(&g, 5, &[0], k2(), 8, 3000, &mut r).unwrap();
        // cobra tail at t=1 is ~ (1 - 1/31)^2 ~ 0.94, bips avoidance at t=8 is near 0.
        assert!(cobra > 0.8);
        assert!(bips < 0.2);
    }

    #[test]
    fn degenerate_monte_carlo_inputs() {
        let g = generators::triangle().unwrap();
        let mut r = rng(4);
        assert!(estimate_cobra_hit_tail(&g, &[0], 5, k2(), 1, 10, &mut r).is_err());
        assert!(estimate_bips_avoidance(&g, 0, &[9], k2(), 1, 10, &mut r).is_err());
        // Zero trials: estimator returns 0 without dividing by zero.
        let p = estimate_cobra_hit_tail(&g, &[0], 1, k2(), 1, 0, &mut r).unwrap();
        assert_eq!(p, 0.0);
    }
}
