//! Value-level process specifications.
//!
//! A [`ProcessSpec`] names any of the seven spreading processes of this workspace together
//! with its parameters, without holding a graph. Specs are plain data: they serialize (for
//! result records and config files), parse from a compact CLI syntax
//! (`cobra:k=2`, `contact:p=0.5,q=0.2`), and instantiate against any [`Graph`] as a
//! `Box<dyn SpreadingProcess>` — the registry/driver pattern that lets experiments and the
//! `repro` binary enumerate processes from a table instead of hand-rolling one measurement
//! loop per process type.
//!
//! # Spec syntax
//!
//! | process | syntax | notes |
//! |---------|--------|-------|
//! | COBRA | `cobra:k=2` or `cobra:rho=0.25` | `rho` selects the fractional branching `1+ρ` |
//! | BIPS | `bips:k=2` or `bips:rho=0.25` | persistent-source epidemic |
//! | single random walk | `walk` | |
//! | multiple random walks | `multiwalk:w=8` | `w` independent walkers |
//! | PUSH | `push` | |
//! | PUSH–PULL | `pushpull` | `push-pull` is accepted too |
//! | SIS contact process | `contact:p=0.5,q=0.2` | `p` infection, `q` recovery; add `transient` to let the source recover |
//!
//! Every process also accepts `start=<vertex>` (alias `source=`), defaulting to vertex 0.
//! The table's syntax is executable — every documented form parses and round-trips
//! through [`Display`](fmt::Display), so the documentation cannot drift from the parser:
//!
//! ```
//! use cobra_core::spec::ProcessSpec;
//!
//! for text in [
//!     "cobra:k=2",
//!     "cobra:rho=0.25",
//!     "bips:k=2",
//!     "walk",
//!     "multiwalk:w=8",
//!     "push",
//!     "pushpull",
//!     "contact:p=0.5,q=0.2",
//!     "contact:p=0.5,q=0.2,transient",
//!     "bips:k=2,start=3",
//! ] {
//!     let spec: ProcessSpec = text.parse().expect(text);
//!     assert_eq!(spec.to_string(), text, "documented syntax must round-trip");
//! }
//! ```
//!
//! Any spec can additionally carry `+`-separated **fault clauses** — `cobra:k=2+drop=0.1`,
//! `push+crash=5%`, `cobra:k=2+gedrop=0.1,0.25,0.5` (bursty Gilbert–Elliott loss),
//! `bips:k=2+crash=10%+repair=0.1` (transient crashes), `bips:k=2+drop=0.1+churn=64`,
//! `cobra:k=2+adv=topdeg:budget=5%` (a state-aware adversary policy; see
//! [`adversary`](crate::adversary)) —
//! described by [`FaultPlan`]: the built process is wrapped in a
//! [`FaultedProcess`] (or routed through the adversary engine). Specs with `churn=`
//! cannot build against a fixed graph; drive them through
//! [`fault::run_churned`](crate::fault::run_churned).
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cobra_core::spec::ProcessSpec;
//! use cobra_core::sim::Runner;
//! use cobra_graph::generators;
//! use rand::SeedableRng;
//!
//! let spec: ProcessSpec = "cobra:k=2".parse()?;
//! let graph = generators::complete(64)?;
//! let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
//! let outcome = Runner::new(10_000).run_spec(&spec, &graph, &mut rng)?;
//! assert!(outcome.completed());
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::str::FromStr;

use cobra_graph::{Graph, VertexId};
use serde::{Deserialize, Serialize};

use crate::baselines::contact::ContactParameters;
use crate::baselines::{
    ContactProcess, MultipleRandomWalks, PushProcess, PushPullProcess, RandomWalk,
};
use crate::bips::BipsProcess;
use crate::cobra::{Branching, CobraProcess};
use crate::fault::{FaultPlan, FaultedProcess};
use crate::process::SpreadingProcess;
use crate::{CoreError, Result};

/// A serializable description of any spreading process in this workspace.
///
/// The `start` vertex doubles as the persistent source for the epidemic processes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ProcessSpec {
    /// The COBRA coalescing-branching random walk.
    Cobra {
        /// Branching factor (`k` or fractional `1+ρ`).
        branching: Branching,
        /// Start vertex.
        start: VertexId,
    },
    /// The BIPS dual epidemic process (persistent source).
    Bips {
        /// Sampling factor (`k` or fractional `1+ρ`).
        branching: Branching,
        /// The persistent source.
        start: VertexId,
    },
    /// A single simple random walk.
    RandomWalk {
        /// Start vertex.
        start: VertexId,
    },
    /// `walkers` independent random walks from a common start.
    MultipleWalks {
        /// Number of walkers.
        walkers: usize,
        /// Start vertex.
        start: VertexId,
    },
    /// The PUSH rumour-spreading protocol.
    Push {
        /// Initially informed vertex.
        start: VertexId,
    },
    /// The PUSH–PULL rumour-spreading protocol.
    PushPull {
        /// Initially informed vertex.
        start: VertexId,
    },
    /// The discrete SIS contact process.
    Contact {
        /// Per-neighbour, per-round transmission probability.
        infection: f64,
        /// Per-round recovery probability.
        recovery: f64,
        /// Whether the source never recovers (the BVDV scenario; required for guaranteed
        /// completion).
        persistent: bool,
        /// Source vertex.
        start: VertexId,
    },
    /// Any process run under a fault plan (spec syntax `cobra:k=2+drop=0.1+crash=5%`).
    Faulted {
        /// The process the faults apply to.
        inner: Box<ProcessSpec>,
        /// The adversity description.
        plan: FaultPlan,
    },
}

impl ProcessSpec {
    /// COBRA with fixed branching factor `k`, starting at vertex 0.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `k == 0`.
    pub fn cobra(k: u32) -> Result<Self> {
        Ok(ProcessSpec::Cobra { branching: Branching::fixed(k)?, start: 0 })
    }

    /// COBRA with fractional branching `1+ρ`, starting at vertex 0.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `ρ` is outside `[0, 1]`.
    pub fn cobra_fractional(rho: f64) -> Result<Self> {
        Ok(ProcessSpec::Cobra { branching: Branching::fractional(rho)?, start: 0 })
    }

    /// BIPS with fixed sampling factor `k`, source vertex 0.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `k == 0`.
    pub fn bips(k: u32) -> Result<Self> {
        Ok(ProcessSpec::Bips { branching: Branching::fixed(k)?, start: 0 })
    }

    /// A single random walk from vertex 0.
    pub fn random_walk() -> Self {
        ProcessSpec::RandomWalk { start: 0 }
    }

    /// `walkers` independent random walks from vertex 0.
    pub fn multiple_walks(walkers: usize) -> Self {
        ProcessSpec::MultipleWalks { walkers, start: 0 }
    }

    /// PUSH from vertex 0.
    pub fn push() -> Self {
        ProcessSpec::Push { start: 0 }
    }

    /// PUSH–PULL from vertex 0.
    pub fn push_pull() -> Self {
        ProcessSpec::PushPull { start: 0 }
    }

    /// A persistent-source contact process from vertex 0.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] for probabilities outside `[0, 1]`.
    pub fn contact(infection: f64, recovery: f64) -> Result<Self> {
        ContactParameters::new(infection, recovery)?;
        Ok(ProcessSpec::Contact { infection, recovery, persistent: true, start: 0 })
    }

    /// The same spec with a different start (or source) vertex.
    #[must_use]
    pub fn with_start(mut self, vertex: VertexId) -> Self {
        match &mut self {
            ProcessSpec::Cobra { start, .. }
            | ProcessSpec::Bips { start, .. }
            | ProcessSpec::RandomWalk { start }
            | ProcessSpec::MultipleWalks { start, .. }
            | ProcessSpec::Push { start }
            | ProcessSpec::PushPull { start }
            | ProcessSpec::Contact { start, .. } => *start = vertex,
            ProcessSpec::Faulted { inner, .. } => {
                let base = std::mem::replace(inner.as_mut(), ProcessSpec::Push { start: 0 });
                *inner.as_mut() = base.with_start(vertex);
            }
        }
        self
    }

    /// The start (or source) vertex of the spec.
    pub fn start(&self) -> VertexId {
        match self {
            ProcessSpec::Cobra { start, .. }
            | ProcessSpec::Bips { start, .. }
            | ProcessSpec::RandomWalk { start }
            | ProcessSpec::MultipleWalks { start, .. }
            | ProcessSpec::Push { start }
            | ProcessSpec::PushPull { start }
            | ProcessSpec::Contact { start, .. } => *start,
            ProcessSpec::Faulted { inner, .. } => inner.start(),
        }
    }

    /// The canonical process name used by [`Display`](fmt::Display) and [`FromStr`]; a
    /// faulted spec reports its inner process name.
    pub fn name(&self) -> &'static str {
        match self {
            ProcessSpec::Cobra { .. } => "cobra",
            ProcessSpec::Bips { .. } => "bips",
            ProcessSpec::RandomWalk { .. } => "walk",
            ProcessSpec::MultipleWalks { .. } => "multiwalk",
            ProcessSpec::Push { .. } => "push",
            ProcessSpec::PushPull { .. } => "pushpull",
            ProcessSpec::Contact { .. } => "contact",
            ProcessSpec::Faulted { inner, .. } => inner.name(),
        }
    }

    /// Wraps this spec in a fault plan (flattening: faulting an already-faulted spec
    /// replaces its plan).
    #[must_use]
    pub fn faulted(self, plan: FaultPlan) -> Self {
        match self {
            ProcessSpec::Faulted { inner, .. } => ProcessSpec::Faulted { inner, plan },
            base => ProcessSpec::Faulted { inner: Box::new(base), plan },
        }
    }

    /// The fault plan attached to this spec, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        match self {
            ProcessSpec::Faulted { plan, .. } => Some(plan),
            _ => None,
        }
    }

    /// The same spec with the churn period replaced (used by the churn driver to build the
    /// per-segment processes). `None` removes churn; a plan that becomes benign unwraps to
    /// the bare inner spec.
    #[must_use]
    pub fn with_churn(self, churn: Option<usize>) -> Self {
        match self {
            ProcessSpec::Faulted { inner, mut plan } => {
                plan.churn = churn;
                if plan.is_benign() {
                    *inner
                } else {
                    ProcessSpec::Faulted { inner, plan }
                }
            }
            base => match churn {
                None => base,
                Some(period) => {
                    base.faulted(FaultPlan { churn: Some(period), ..FaultPlan::default() })
                }
            },
        }
    }

    /// Instantiates the process against `graph`.
    ///
    /// The returned box borrows the graph (processes hold `&Graph`), so it lives at most as
    /// long as `graph`; it is `Send`, which lets Monte-Carlo drivers build one process per
    /// parallel trial.
    ///
    /// # Errors
    ///
    /// Propagates the constructor validation of the underlying process
    /// ([`CoreError::VertexOutOfRange`], [`CoreError::UnsuitableGraph`],
    /// [`CoreError::InvalidParameters`]).
    pub fn build<'g>(&self, graph: &'g Graph) -> Result<Box<dyn SpreadingProcess + Send + 'g>> {
        Ok(match *self {
            ProcessSpec::Cobra { branching, start } => {
                Box::new(CobraProcess::new(graph, start, branching)?)
            }
            ProcessSpec::Bips { branching, start } => {
                Box::new(BipsProcess::new(graph, start, branching)?)
            }
            ProcessSpec::RandomWalk { start } => Box::new(RandomWalk::new(graph, start)?),
            ProcessSpec::MultipleWalks { walkers, start } => {
                Box::new(MultipleRandomWalks::new(graph, start, walkers)?)
            }
            ProcessSpec::Push { start } => Box::new(PushProcess::new(graph, start)?),
            ProcessSpec::PushPull { start } => Box::new(PushPullProcess::new(graph, start)?),
            ProcessSpec::Contact { infection, recovery, persistent, start } => {
                Box::new(ContactProcess::new(
                    graph,
                    start,
                    ContactParameters::new(infection, recovery)?,
                    persistent,
                )?)
            }
            ProcessSpec::Faulted { ref inner, ref plan } => {
                if matches!(plan.drop, crate::fault::DropModel::EdgeGilbertElliott { .. })
                    && (plan.adversary.is_some() || plan.defense.is_some())
                {
                    // The adversary/defense engines run the oblivious clauses through
                    // graph-blind PlanDynamics layers that cannot carry an edge bank.
                    return Err(CoreError::InvalidSpec {
                        spec: self.to_string(),
                        reason: "gedrop=…:scope=edge cannot be combined with adv=/def= \
                                 policies; use the global gedrop channel (no :scope=edge) \
                                 alongside state-aware policies"
                            .to_string(),
                    });
                }
                if plan.defense.is_some() {
                    // Defended plans wrap outermost: the defense engine builds the
                    // adversarial/faulted interior itself.
                    return Ok(Box::new(crate::defense::build_defended(inner, plan, graph)?));
                }
                if plan.adversary.is_some() {
                    // State-aware plans route through the adversary engine, which decides
                    // whether a FaultedProcess layer is still needed for the oblivious
                    // clauses.
                    return crate::adversary::build_adversarial(inner, plan, graph);
                }
                let process = inner.build(graph)?;
                // `with_graph` is `new` for every plan except `scope=edge` ones, whose
                // per-edge channel bank needs the instance's edge set.
                Box::new(FaultedProcess::with_graph(process, plan, inner.start(), graph)?)
            }
        })
    }

    /// Instantiates the process against `graph` in **stream mode**, wrapped in a
    /// [`ParallelProcess`](crate::parallel::ParallelProcess) that shards frontier
    /// iteration across `threads` worker threads. The per-trial stream key is drawn from
    /// `rng`, so the usual `(master, label, index)` seeding path carries over unchanged —
    /// and the resulting trajectory is bit-identical for every `threads` value.
    ///
    /// # Errors
    ///
    /// As [`build`](Self::build), plus rejection of `threads == 0` and of specs whose
    /// wrapper stack does not support stream stepping (churn plans, which re-instantiate
    /// the graph mid-run, are already rejected by `build` itself outside
    /// [`fault::run_churned`](crate::fault::run_churned)).
    // cobra-lint: draws(bounded)
    pub fn build_parallel<'g>(
        &self,
        graph: &'g Graph,
        threads: usize,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Box<dyn SpreadingProcess + Send + 'g>> {
        Ok(Box::new(crate::parallel::build_parallel(self, graph, threads, rng)?))
    }

    /// One representative spec per process kind (used by tests and `repro --list-processes`).
    pub fn examples() -> Vec<ProcessSpec> {
        vec![
            ProcessSpec::cobra(2).expect("k = 2 is valid"),
            ProcessSpec::Cobra { branching: Branching::Fractional { rho: 0.5 }, start: 0 },
            ProcessSpec::bips(2).expect("k = 2 is valid"),
            ProcessSpec::random_walk(),
            ProcessSpec::multiple_walks(8),
            ProcessSpec::push(),
            ProcessSpec::push_pull(),
            ProcessSpec::contact(0.8, 0.1).expect("valid probabilities"),
            ProcessSpec::cobra(2).expect("k = 2 is valid").faulted(FaultPlan {
                drop: crate::fault::DropModel::iid(0.1),
                crash: crate::fault::CrashSpec::Percent { percent: 5.0 },
                ..FaultPlan::default()
            }),
            // PUSH (monotone, so guaranteed to complete) under a bursty channel: mean bad
            // burst 1/0.25 = 4 rounds, 50% loss while bad.
            ProcessSpec::push().faulted(FaultPlan {
                drop: crate::fault::DropModel::GilbertElliott {
                    p_bad: 0.05,
                    p_good: 0.25,
                    f_bad: 0.5,
                    f_good: 0.0,
                },
                ..FaultPlan::default()
            }),
            // BIPS (persistent source) under transient crashes.
            ProcessSpec::bips(2).expect("k = 2 is valid").faulted(FaultPlan {
                crash: crate::fault::CrashSpec::Percent { percent: 10.0 },
                repair: Some(0.1),
                ..FaultPlan::default()
            }),
            // Adaptive adversaries (see `adversary`): BIPS survives a budgeted
            // crash-the-hubs policy (crashed vertices still sample), and monotone PUSH
            // completes under a growth-front drop.
            ProcessSpec::bips(2).expect("k = 2 is valid").faulted(FaultPlan {
                adversary: Some(crate::adversary::AdversarySpec::CrashTopDegree {
                    budget: crate::adversary::AdversaryBudget::Percent { percent: 5.0 },
                    rate: 1,
                }),
                ..FaultPlan::default()
            }),
            ProcessSpec::push().faulted(FaultPlan {
                adversary: Some(crate::adversary::AdversarySpec::DropFrontier { f: 0.5 }),
                ..FaultPlan::default()
            }),
            // Defense policies (see `defense`): COBRA under the crash-the-hubs adversary
            // with the AIMD stall-triggered branching boost fighting back.
            ProcessSpec::cobra(2).expect("k = 2 is valid").faulted(FaultPlan {
                adversary: Some(crate::adversary::AdversarySpec::CrashTopDegree {
                    budget: crate::adversary::AdversaryBudget::Percent { percent: 5.0 },
                    rate: 1,
                }),
                defense: Some(crate::defense::DefenseSpec::BoostK { window: 8, cap: 4 }),
                ..FaultPlan::default()
            }),
            // Heterogeneous workloads (E12): degree-proportional budgets, capped at 4,
            // under per-edge Gilbert–Elliott bursts — loss hits individual links.
            ProcessSpec::Cobra { branching: Branching::PerVertex { cap: 4 }, start: 0 }.faulted(
                FaultPlan {
                    drop: crate::fault::DropModel::EdgeGilbertElliott {
                        p_bad: 0.1,
                        p_good: 0.25,
                        f_bad: 0.5,
                        f_good: 0.0,
                    },
                    ..FaultPlan::default()
                },
            ),
            // Uncapped k=deg budgets on the bare process.
            ProcessSpec::Cobra { branching: Branching::PerVertex { cap: u32::MAX }, start: 0 },
        ]
    }
}

impl fmt::Display for ProcessSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let ProcessSpec::Faulted { inner, plan } = self {
            return write!(f, "{inner}+{plan}");
        }
        let mut parts: Vec<String> = Vec::new();
        match self {
            ProcessSpec::Cobra { branching, .. } | ProcessSpec::Bips { branching, .. } => {
                match branching {
                    Branching::Fixed { k } => parts.push(format!("k={k}")),
                    Branching::Fractional { rho } => parts.push(format!("rho={rho}")),
                    // No comma inside the value: `deg:cap=8` must survive the
                    // comma-splitting argument parser on the way back in.
                    Branching::PerVertex { cap } if *cap == u32::MAX => {
                        parts.push("k=deg".to_string())
                    }
                    Branching::PerVertex { cap } => parts.push(format!("k=deg:cap={cap}")),
                }
            }
            ProcessSpec::MultipleWalks { walkers, .. } => parts.push(format!("w={walkers}")),
            ProcessSpec::Contact { infection, recovery, persistent, .. } => {
                parts.push(format!("p={infection}"));
                parts.push(format!("q={recovery}"));
                if !persistent {
                    parts.push("transient".to_string());
                }
            }
            ProcessSpec::RandomWalk { .. }
            | ProcessSpec::Push { .. }
            | ProcessSpec::PushPull { .. } => {}
            ProcessSpec::Faulted { .. } => unreachable!("handled above"),
        }
        if self.start() != 0 {
            parts.push(format!("start={}", self.start()));
        }
        if parts.is_empty() {
            write!(f, "{}", self.name())
        } else {
            write!(f, "{}:{}", self.name(), parts.join(","))
        }
    }
}

/// Parsed `key=value` / bare-flag arguments of a spec string.
struct SpecArgs {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl SpecArgs {
    fn parse(text: &str) -> Result<Self> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        for token in text.split(',').filter(|t| !t.is_empty()) {
            match token.split_once('=') {
                Some((key, value)) => {
                    pairs.push((key.trim().to_string(), value.trim().to_string()))
                }
                None => flags.push(token.trim().to_string()),
            }
        }
        Ok(SpecArgs { pairs, flags })
    }

    fn take(&mut self, key: &str) -> Option<String> {
        let index = self.pairs.iter().position(|(k, _)| k == key)?;
        Some(self.pairs.remove(index).1)
    }

    fn take_parsed<T: FromStr>(&mut self, key: &str) -> Result<Option<T>> {
        match self.take(key) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| CoreError::InvalidParameters {
                reason: format!("invalid value {raw:?} for `{key}`"),
            }),
        }
    }

    /// Takes a parameter that has two accepted spellings, rejecting specs that give both
    /// (one value would be silently dropped otherwise).
    fn take_aliased<T: FromStr>(&mut self, key: &str, alias: &str) -> Result<Option<T>> {
        let primary = self.take_parsed(key)?;
        let secondary = self.take_parsed(alias)?;
        match (primary, secondary) {
            (Some(_), Some(_)) => Err(CoreError::InvalidParameters {
                reason: format!("specify either {key}= or {alias}=, not both"),
            }),
            (value, None) | (None, value) => Ok(value),
        }
    }

    fn take_flag(&mut self, name: &str) -> bool {
        let index = self.flags.iter().position(|f| f == name);
        match index {
            Some(index) => {
                self.flags.remove(index);
                true
            }
            None => false,
        }
    }

    fn finish(self, spec: &str) -> Result<()> {
        if let Some((key, _)) = self.pairs.first() {
            return Err(CoreError::InvalidParameters {
                reason: format!("unknown parameter `{key}` in process spec {spec:?}"),
            });
        }
        if let Some(flag) = self.flags.first() {
            return Err(CoreError::InvalidParameters {
                reason: format!("unknown flag `{flag}` in process spec {spec:?}"),
            });
        }
        Ok(())
    }
}

impl FromStr for ProcessSpec {
    type Err = CoreError;

    fn from_str(text: &str) -> Result<Self> {
        // Parse failures are wrapped in `InvalidSpec` carrying the *full* original input, so
        // a CLI error for `push+gedrop=` names the whole spec, not just the broken clause.
        parse_spec(text).map_err(|err| match err {
            CoreError::InvalidParameters { reason } | CoreError::InvalidSpec { reason, .. } => {
                CoreError::InvalidSpec { spec: text.to_string(), reason }
            }
            other => other,
        })
    }
}

fn parse_spec(text: &str) -> Result<ProcessSpec> {
    // `+` separates the base spec from fault clauses: `cobra:k=2+drop=0.1+crash=5%`.
    if let Some((base, clauses)) = text.split_once('+') {
        let inner: ProcessSpec = base.parse()?;
        return Ok(inner.faulted(FaultPlan::parse_clauses(clauses)?));
    }
    let (name, rest) = match text.split_once(':') {
        Some((name, rest)) => (name.trim(), rest),
        None => (text.trim(), ""),
    };
    let mut args = SpecArgs::parse(rest)?;
    let start: VertexId = args.take_aliased("start", "source")?.unwrap_or(0);
    let branching = |args: &mut SpecArgs| -> Result<Branching> {
        let k: Option<String> = args.take("k");
        let rho: Option<f64> = args.take_parsed("rho")?;
        match (k, rho) {
            (Some(_), Some(_)) => Err(CoreError::InvalidParameters {
                reason: "specify either k= or rho=, not both".to_string(),
            }),
            (Some(raw), None) => {
                if raw == "deg" {
                    Branching::per_vertex(u32::MAX)
                } else if let Some(cap) = raw.strip_prefix("deg:cap=") {
                    Branching::per_vertex(cap.parse().map_err(|_| {
                        CoreError::InvalidParameters {
                            reason: format!("invalid budget cap in `k={raw}`"),
                        }
                    })?)
                } else {
                    Branching::fixed(raw.parse().map_err(|_| CoreError::InvalidParameters {
                        reason: format!(
                            "invalid value {raw:?} for `k` (expected an integer, `deg`, or \
                             `deg:cap=N`)"
                        ),
                    })?)
                }
            }
            (None, Some(rho)) => Branching::fractional(rho),
            (None, None) => Branching::fixed(2),
        }
    };
    let spec = match name.to_ascii_lowercase().as_str() {
        "cobra" => ProcessSpec::Cobra { branching: branching(&mut args)?, start },
        "bips" => {
            let branching = branching(&mut args)?;
            if matches!(branching, Branching::PerVertex { .. }) {
                return Err(CoreError::InvalidParameters {
                    reason: "k=deg budgets are a COBRA (push) feature; BIPS pulls k samples \
                             at every vertex, so a per-sender degree budget has no meaning"
                        .to_string(),
                });
            }
            ProcessSpec::Bips { branching, start }
        }
        "walk" | "rw" | "random-walk" => ProcessSpec::RandomWalk { start },
        "multiwalk" | "walks" | "multi-walk" => {
            let walkers =
                args.take_aliased("w", "walkers")?.ok_or_else(|| CoreError::InvalidParameters {
                    reason: "multiwalk requires w=<walkers>".to_string(),
                })?;
            ProcessSpec::MultipleWalks { walkers, start }
        }
        "push" => ProcessSpec::Push { start },
        "pushpull" | "push-pull" => ProcessSpec::PushPull { start },
        "contact" | "sis" => {
            let infection = args.take_aliased("p", "infection")?.ok_or_else(|| {
                CoreError::InvalidParameters {
                    reason: "contact requires p=<infection probability>".to_string(),
                }
            })?;
            let recovery = args.take_aliased("q", "recovery")?.ok_or_else(|| {
                CoreError::InvalidParameters {
                    reason: "contact requires q=<recovery probability>".to_string(),
                }
            })?;
            ContactParameters::new(infection, recovery)?;
            let persistent = !args.take_flag("transient");
            ProcessSpec::Contact { infection, recovery, persistent, start }
        }
        other => {
            return Err(CoreError::InvalidParameters {
                reason: format!(
                    "unknown process {other:?} (expected cobra, bips, walk, multiwalk, \
                     push, pushpull or contact)"
                ),
            })
        }
    };
    args.finish(text)?;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::run_until_complete;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn parse_and_display_round_trip() {
        for spec in ProcessSpec::examples() {
            let text = spec.to_string();
            let back: ProcessSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(spec, back, "round trip through {text:?}");
        }
        // Non-default start vertices survive too.
        let spec = ProcessSpec::cobra(3).unwrap().with_start(7);
        assert_eq!(spec.to_string(), "cobra:k=3,start=7");
        assert_eq!(spec.to_string().parse::<ProcessSpec>().unwrap(), spec);
    }

    #[test]
    fn serde_round_trip() {
        for spec in ProcessSpec::examples() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: ProcessSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "serde round trip through {json}");
        }
    }

    #[test]
    fn parse_accepts_aliases_and_defaults() {
        assert_eq!("cobra".parse::<ProcessSpec>().unwrap(), ProcessSpec::cobra(2).unwrap());
        assert_eq!(
            "cobra:rho=0.25".parse::<ProcessSpec>().unwrap(),
            ProcessSpec::cobra_fractional(0.25).unwrap()
        );
        assert_eq!("rw".parse::<ProcessSpec>().unwrap(), ProcessSpec::random_walk());
        assert_eq!("push-pull".parse::<ProcessSpec>().unwrap(), ProcessSpec::push_pull());
        assert_eq!(
            "multiwalk:walkers=4".parse::<ProcessSpec>().unwrap(),
            ProcessSpec::multiple_walks(4)
        );
        assert_eq!(
            "bips:k=2,source=3".parse::<ProcessSpec>().unwrap(),
            ProcessSpec::bips(2).unwrap().with_start(3)
        );
        let contact: ProcessSpec = "sis:p=0.3,q=0.7,transient".parse().unwrap();
        assert_eq!(
            contact,
            ProcessSpec::Contact { infection: 0.3, recovery: 0.7, persistent: false, start: 0 }
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!("frisbee".parse::<ProcessSpec>().is_err());
        assert!("cobra:k=0".parse::<ProcessSpec>().is_err());
        assert!("cobra:k=2,rho=0.5".parse::<ProcessSpec>().is_err());
        assert!("bips:k=2,start=1,source=5".parse::<ProcessSpec>().is_err());
        assert!("multiwalk:w=4,walkers=9".parse::<ProcessSpec>().is_err());
        assert!("contact:p=0.3,infection=0.4,q=0.5".parse::<ProcessSpec>().is_err());
        assert!("cobra:k=two".parse::<ProcessSpec>().is_err());
        assert!("cobra:z=1".parse::<ProcessSpec>().is_err());
        assert!("cobra:k=2,bogusflag".parse::<ProcessSpec>().is_err());
        assert!("multiwalk".parse::<ProcessSpec>().is_err());
        assert!("contact:p=0.5".parse::<ProcessSpec>().is_err());
        assert!("contact:p=1.5,q=0.5".parse::<ProcessSpec>().is_err());
    }

    #[test]
    fn malformed_specs_report_the_full_offending_input() {
        // Truncated specs (empty value after `=`) must come back as a structured
        // `InvalidSpec` naming the complete input text — never a panic, and never an
        // error that only mentions the inner clause.
        for text in [
            "cobra:k=",
            "push+adv=topdeg:budget=",
            "push+gedrop=",
            "cobra:k=2+gedrop=0.1,0.25,",
            "multiwalk:w=",
            "contact:p=,q=0.5",
            "cobra:k=2+def=boostk:trigger=",
            "cobra:k=2+def=reseed:m=",
            "cobra:k=2+def=shield",
            "cobra:k=2+def=passive+def=boostk",
        ] {
            match text.parse::<ProcessSpec>() {
                Err(CoreError::InvalidSpec { spec, reason }) => {
                    assert_eq!(spec, text, "wrapped spec must be the full input");
                    assert!(!reason.is_empty(), "{text:?} needs a reason");
                }
                other => panic!("{text:?}: expected InvalidSpec, got {other:?}"),
            }
        }
        // The Display form carries the full spec so CLI users see what to fix.
        let err = "push+gedrop=".parse::<ProcessSpec>().unwrap_err();
        assert!(err.to_string().contains("push+gedrop="), "{err}");
    }

    #[test]
    fn build_instantiates_every_process() {
        let graph = generators::complete(16).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        for spec in ProcessSpec::examples() {
            let mut process = spec.build(&graph).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(process.num_vertices(), 16);
            assert_eq!(process.num_active(), 1);
            let rounds = run_until_complete(process.as_mut(), &mut rng, 100_000);
            assert!(rounds.is_some(), "{spec} failed to complete on K_16");
        }
    }

    #[test]
    fn every_process_rejects_isolated_vertices() {
        // Regression for the contact process (which used to run to its round budget on
        // such graphs), pinned for every process the spec grammar can build: vertex 3
        // has no edges, so nothing can ever reach it.
        let isolated = cobra_graph::Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        for spec in ProcessSpec::examples() {
            match spec.build(&isolated) {
                Err(CoreError::UnsuitableGraph { reason }) => {
                    assert!(reason.contains("isolated"), "{spec}: {reason}");
                }
                Err(other) => panic!("{spec}: expected UnsuitableGraph, got {other:?}"),
                Ok(_) => panic!("{spec}: must not build on a graph with an isolated vertex"),
            }
        }
    }

    #[test]
    fn per_vertex_budget_specs_parse_display_and_reject_misuse() {
        // `k=deg` and `k=deg:cap=N` round-trip (the cap spelling uses `:` precisely so it
        // survives the comma-splitting argument parser).
        let deg: ProcessSpec = "cobra:k=deg".parse().unwrap();
        assert_eq!(
            deg,
            ProcessSpec::Cobra { branching: Branching::PerVertex { cap: u32::MAX }, start: 0 }
        );
        assert_eq!(deg.to_string(), "cobra:k=deg");
        let capped: ProcessSpec = "cobra:k=deg:cap=8".parse().unwrap();
        assert_eq!(
            capped,
            ProcessSpec::Cobra { branching: Branching::PerVertex { cap: 8 }, start: 0 }
        );
        assert_eq!(capped.to_string(), "cobra:k=deg:cap=8");
        // Budgets are a push-side feature: BIPS rejects them at parse with the full spec.
        match "bips:k=deg".parse::<ProcessSpec>() {
            Err(CoreError::InvalidSpec { spec, reason }) => {
                assert_eq!(spec, "bips:k=deg");
                assert!(reason.contains("COBRA"), "{reason}");
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        assert!("bips:k=deg:cap=4".parse::<ProcessSpec>().is_err());
        assert!("cobra:k=deg:cap=0".parse::<ProcessSpec>().is_err(), "cap=0 pushes nothing");
        assert!("cobra:k=deg:cap=".parse::<ProcessSpec>().is_err());
        // And `k=deg` means nothing to the non-branching processes.
        assert!("push:k=deg".parse::<ProcessSpec>().is_err());
        assert!("rw:k=deg".parse::<ProcessSpec>().is_err());
    }

    #[test]
    fn edge_scope_channels_reject_policy_combos_and_double_loss() {
        // One loss model per plan: the existing drop=/gedrop= exclusion covers the new
        // scope spelling too.
        match "cobra:k=2+gedrop=0.1,0.25,0.5:scope=edge+drop=0.2".parse::<ProcessSpec>() {
            Err(CoreError::InvalidSpec { spec, .. }) => {
                assert_eq!(spec, "cobra:k=2+gedrop=0.1,0.25,0.5:scope=edge+drop=0.2");
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        // Per-edge channels and state-aware policies are rejected at build (the policies
        // run through engines that see only the global channel).
        let graph = generators::complete(8).unwrap();
        for text in [
            "cobra:k=2+gedrop=0.1,0.25,0.5:scope=edge+adv=dropfront:f=0.5",
            "cobra:k=2+gedrop=0.1,0.25,0.5:scope=edge+def=boostk",
        ] {
            let spec: ProcessSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            let canonical = spec.to_string();
            match spec.build(&graph) {
                Err(CoreError::InvalidSpec { spec: full, reason }) => {
                    assert_eq!(full, canonical, "the error must echo the full spec");
                    assert!(reason.contains("scope=edge"), "{reason}");
                }
                Err(other) => panic!("{text}: expected InvalidSpec, got {other:?}"),
                Ok(_) => panic!("{text}: edge channels must not combine with policies"),
            }
        }
        // The happy path builds and completes (monotone PUSH so completion is sure).
        let spec: ProcessSpec = "push+gedrop=0.1,0.25,0.5:scope=edge".parse().unwrap();
        let mut process = spec.build(&graph).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(77);
        assert!(run_until_complete(process.as_mut(), &mut rng, 100_000).is_some());
    }

    #[test]
    fn fault_clauses_parse_display_and_build() {
        let spec: ProcessSpec = "cobra:k=2+drop=0.1+crash=5%".parse().unwrap();
        assert_eq!(spec.name(), "cobra");
        let plan = spec.fault_plan().expect("parsed spec carries a plan");
        assert_eq!(plan.drop, crate::fault::DropModel::iid(0.1));
        assert_eq!(spec.to_string(), "cobra:k=2+drop=0.1+crash=5%");
        assert_eq!(spec.to_string().parse::<ProcessSpec>().unwrap(), spec);

        // The v2 adversity clauses ride through the same `+` grammar.
        let bursty: ProcessSpec = "push+gedrop=0.1,0.25,0.5+crash=10%+repair=0.2".parse().unwrap();
        let plan = bursty.fault_plan().unwrap();
        assert_eq!(
            plan.drop,
            crate::fault::DropModel::GilbertElliott {
                p_bad: 0.1,
                p_good: 0.25,
                f_bad: 0.5,
                f_good: 0.0
            }
        );
        assert_eq!(plan.repair, Some(0.2));
        assert_eq!(bursty.to_string(), "push+gedrop=0.1,0.25,0.5+crash=10%+repair=0.2");
        assert_eq!(bursty.to_string().parse::<ProcessSpec>().unwrap(), bursty);
        assert!("push+gedrop=0.1,0.25".parse::<ProcessSpec>().is_err());
        assert!("push+repair=0.1".parse::<ProcessSpec>().is_err());

        // A zero plan still round-trips (rendered as `+drop=0`).
        let zero: ProcessSpec = "push+drop=0".parse().unwrap();
        assert!(zero.fault_plan().unwrap().is_benign());
        assert_eq!(zero.to_string().parse::<ProcessSpec>().unwrap(), zero);

        // Faulted specs build and run through the normal machinery.
        let graph = generators::complete(32).unwrap();
        let mut process = spec.build(&graph).unwrap();
        let mut r = ChaCha12Rng::seed_from_u64(3);
        assert!(run_until_complete(process.as_mut(), &mut r, 100_000).is_some());

        // with_start reaches through the wrapper; churn specs refuse to build on a fixed
        // graph but strip down for the segment driver.
        let moved = spec.clone().with_start(7);
        assert_eq!(moved.start(), 7);
        let churny: ProcessSpec = "cobra:k=2+churn=64".parse().unwrap();
        assert!(churny.build(&graph).is_err());
        assert_eq!(churny.clone().with_churn(None), ProcessSpec::cobra(2).unwrap());
        assert_eq!(churny.fault_plan().unwrap().churn, Some(64));

        // Malformed fault clauses are rejected loudly.
        assert!("cobra:k=2+drop=1.5".parse::<ProcessSpec>().is_err());
        assert!("cobra:k=2+frob=1".parse::<ProcessSpec>().is_err());
        assert!("cobra:k=2+drop=0.1+drop=0.2".parse::<ProcessSpec>().is_err());

        // Defense clauses ride through the same grammar, compose with adversaries, and
        // canonicalize after the adv= clause.
        let defended: ProcessSpec =
            "cobra:k=2+adv=topdeg:budget=5%+def=boostk:trigger=stall,w=8,cap=4".parse().unwrap();
        let plan = defended.fault_plan().unwrap();
        assert_eq!(plan.defense, Some(crate::defense::DefenseSpec::BoostK { window: 8, cap: 4 }));
        assert_eq!(
            defended.to_string(),
            "cobra:k=2+adv=topdeg:budget=5%+def=boostk:trigger=stall,w=8,cap=4"
        );
        assert_eq!(defended.to_string().parse::<ProcessSpec>().unwrap(), defended);
        let reordered: ProcessSpec =
            "cobra:k=2+def=boostk:trigger=stall,w=8,cap=4+adv=topdeg:budget=5%".parse().unwrap();
        assert_eq!(reordered, defended);
        let graph = generators::complete(32).unwrap();
        let mut defended_process = defended.build(&graph).unwrap();
        let mut r = ChaCha12Rng::seed_from_u64(5);
        assert!(run_until_complete(defended_process.as_mut(), &mut r, 100_000).is_some());
        assert!("cobra:k=2+def=passive+def=passive".parse::<ProcessSpec>().is_err());
    }

    #[test]
    fn build_propagates_validation_errors() {
        let graph = generators::complete(4).unwrap();
        let spec = ProcessSpec::cobra(2).unwrap().with_start(9);
        assert!(matches!(spec.build(&graph), Err(CoreError::VertexOutOfRange { .. })));
        let empty = cobra_graph::Graph::default();
        assert!(ProcessSpec::push().build(&empty).is_err());
    }
}
