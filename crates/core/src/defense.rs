//! Defense policies: the recovery mirror of the [`adversary`](crate::adversary) engine.
//!
//! An adversary watches a running process and *injects* faults; a defense watches the same
//! [`ProcessView`] and *spends* recovery levers. The symmetry is deliberate: both are
//! two-phase (`observe` first, then the engine collects the decision), both see only the
//! read-only view, and both compose through the `+` fault-clause grammar of
//! [`ProcessSpec`]. The levers a defense may pull, bundled in
//! [`DefenseActions`]:
//!
//! * a **per-round branching multiplier** — each process multiplies its per-token fan-out
//!   (`k`) by this factor via [`SpreadingProcess::set_branching_boost`]; the cost is
//!   accounted as *extra transmissions spent* in [`DefenseStats`],
//! * a **re-seed set** — already-covered vertices to re-activate via
//!   [`SpreadingProcess::reseed`] when the live frontier has died,
//! * a **transmission backoff** — rounds in which the defense mutes its own process
//!   (composed as a unit drop), the cooperative cousin of a crash fault.
//!
//! Four policies ship behind the `def=` spec clause; the documented examples are
//! executable and round-trip through the parser:
//!
//! ```
//! use cobra_core::spec::ProcessSpec;
//!
//! for text in [
//!     "cobra:k=2+def=passive",
//!     "cobra:k=2+adv=topdeg:budget=5%+def=boostk:trigger=stall,w=8,cap=4",
//!     "bips:k=2+def=reseed:m=1%,cooldown=16",
//!     "push+drop=0.2+def=adaptivek:target=growth-ratio",
//! ] {
//!     let spec: ProcessSpec = text.parse().expect(text);
//!     assert_eq!(spec.to_string(), text, "Display must round-trip the documented syntax");
//!     assert_eq!(spec.to_string().parse::<ProcessSpec>().unwrap(), spec);
//! }
//! ```
//!
//! `passive` is the bit-identity baseline: a defended spec whose policy never acts calls
//! **no** process hooks and draws **no** RNG words, so `cobra:k=2+def=passive` replays the
//! exact trajectory of `cobra:k=2` (property-tested in `tests/adversary_equivalence.rs`).
//! `boostk` is AIMD control on `k`: when the coverage delta over a `w`-round window stalls
//! it doubles the multiplier (capped), and decays it additively once growth resumes —
//! stall-triggered boosting restores the expansion slack Theorem 1's argument needs.
//! `reseed` re-activates up to `m` covered vertices adjacent to the uncovered region, but
//! only when the frontier has died entirely, then waits out a cooldown. `adaptivek`
//! servo-controls the multiplier toward the growth-ratio closed form of
//! [`growth::growth_lower_bound`](crate::growth::growth_lower_bound).
//!
//! # Architecture
//!
//! [`DefendedProcess`] is the *outermost* wrapper: each round the policy observes, the
//! wrapper applies any re-seed and branching boost, and only then does the inner process
//! (possibly an [`AdversarialProcess`](crate::adversary::AdversarialProcess)) take its
//! step — so an adaptive adversary observes the *post-recovery* state and the arms race is
//! fair. Routing lives in [`build_defended`], the target
//! [`ProcessSpec::build`](crate::spec::ProcessSpec::build) dispatches to for any plan with
//! a `def=` clause.

use std::fmt;
use std::str::FromStr;

use cobra_graph::{Graph, VertexBitset, VertexId};
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::adversary::{build_adversarial, AdversaryBudget, ProcessView};
use crate::fault::{FaultPlan, FaultedProcess, StepFaults};
use crate::process::SpreadingProcess;
use crate::spec::ProcessSpec;
use crate::{CoreError, Result};

/// The recovery levers a [`DefensePolicy`] pulls for one round.
///
/// The inert value (`k_multiplier == 1`, empty re-seed set, no backoff) is a guarantee,
/// not a hint: [`DefendedProcess`] makes **zero** process-hook calls for it, so an inert
/// policy is bit-identical to no defense at all.
#[derive(Debug, Clone, Copy)]
pub struct DefenseActions<'a> {
    /// Factor each process multiplies its per-token branching (`k`) by this round.
    /// `1` means "leave `k` alone"; values are clamped to at least 1.
    pub k_multiplier: u32,
    /// Already-covered vertices to re-activate before the round steps.
    pub reseed: &'a [VertexId],
    /// When positive, the defense mutes its own transmissions this round (a unit drop) —
    /// backoff to let a cooldown or repair window pass.
    pub backoff: usize,
}

impl DefenseActions<'_> {
    /// The do-nothing decision.
    pub const INERT: DefenseActions<'static> =
        DefenseActions { k_multiplier: 1, reseed: &[], backoff: 0 };

    /// Whether this decision touches the process at all.
    pub fn is_inert(&self) -> bool {
        self.k_multiplier <= 1 && self.reseed.is_empty() && self.backoff == 0
    }
}

/// An adaptive defense: observes the (possibly adversarial) process each round, then hands
/// the engine its recovery decision. Mirrors
/// [`AdversaryPolicy`](crate::adversary::AdversaryPolicy) exactly — same two-phase shape,
/// same read-only [`ProcessView`].
pub trait DefensePolicy: fmt::Debug + Send {
    /// Observes the pre-round state. Called exactly once per round, before the process
    /// steps and before [`actions`](DefensePolicy::actions).
    fn observe(&mut self, view: &ProcessView<'_>, rng: &mut dyn RngCore);

    /// The decision for the upcoming round, borrowed from the policy's own storage.
    fn actions(&self) -> DefenseActions<'_>;

    /// Clears all adaptive state for a fresh trial.
    fn reset(&mut self);
}

/// Cost ledger of a [`DefendedProcess`]: what the defense *spent*, so experiments can
/// report recovery at matched cost.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DefenseStats {
    /// Rounds in which a branching multiplier above 1 was in force.
    pub boost_rounds: usize,
    /// Expected extra transmissions the boosts cost, summed over boosted rounds (each
    /// process reports its own per-round figure from
    /// [`set_branching_boost`](SpreadingProcess::set_branching_boost)).
    pub extra_transmissions: f64,
    /// How many times a non-empty re-seed set was applied.
    pub reseed_events: usize,
    /// Total vertices actually re-activated across those events.
    pub reseeded_vertices: usize,
    /// Rounds muted by a backoff request.
    pub backoff_rounds: usize,
}

/// The `def=passive` no-op: observes nothing, spends nothing. Exists so a defended spec
/// can serve as the bit-identity control arm of every defense experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassivePolicy;

impl DefensePolicy for PassivePolicy {
    // cobra-lint: hot
    // cobra-lint: draws(0)
    fn observe(&mut self, _view: &ProcessView<'_>, _rng: &mut dyn RngCore) {}

    fn actions(&self) -> DefenseActions<'_> {
        DefenseActions::INERT
    }

    fn reset(&mut self) {}
}

/// The `def=boostk` AIMD controller: multiplicative increase of the branching multiplier
/// when coverage growth stalls for `window` consecutive rounds, additive decrease the
/// moment growth resumes (classic AIMD, with the roles of "congestion" and "idle link"
/// swapped — here *stall* is the congestion signal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoostKPolicy {
    window: usize,
    cap: u32,
    multiplier: u32,
    best_coverage: usize,
    stalled_rounds: usize,
}

impl BoostKPolicy {
    /// A controller that arms after `window` stalled rounds and never exceeds `cap`.
    pub fn new(window: usize, cap: u32) -> Self {
        BoostKPolicy { window, cap, multiplier: 1, best_coverage: 0, stalled_rounds: 0 }
    }

    /// The multiplier currently in force (1 when idle).
    pub fn multiplier(&self) -> u32 {
        self.multiplier
    }

    /// The stall metric: monotone coverage when the process tracks one, the live frontier
    /// size otherwise (the only signal a memoryless process exposes).
    fn coverage_metric(view: &ProcessView<'_>) -> usize {
        view.coverage().map_or_else(|| view.num_active(), VertexBitset::count)
    }
}

impl DefensePolicy for BoostKPolicy {
    // cobra-lint: hot
    // cobra-lint: draws(0)
    fn observe(&mut self, view: &ProcessView<'_>, _rng: &mut dyn RngCore) {
        if view.is_complete() {
            self.multiplier = 1;
            self.stalled_rounds = 0;
            return;
        }
        let covered = Self::coverage_metric(view);
        if covered > self.best_coverage {
            // Growth resumed: remember the new high-water mark, decay additively.
            self.best_coverage = covered;
            self.stalled_rounds = 0;
            self.multiplier = self.multiplier.saturating_sub(1).max(1);
        } else {
            self.stalled_rounds += 1;
            if self.stalled_rounds >= self.window {
                // A full window without a new coverage high: escalate multiplicatively.
                self.multiplier = (self.multiplier.saturating_mul(2)).min(self.cap);
                self.stalled_rounds = 0;
            }
        }
    }

    fn actions(&self) -> DefenseActions<'_> {
        DefenseActions { k_multiplier: self.multiplier, reseed: &[], backoff: 0 }
    }

    fn reset(&mut self) {
        self.multiplier = 1;
        self.best_coverage = 0;
        self.stalled_rounds = 0;
    }
}

/// The `def=reseed` reviver: when the live frontier has died *entirely* (and the process
/// is not complete), re-activates up to `m` already-covered vertices that still border the
/// uncovered region, then sleeps for `cooldown` rounds.
///
/// Candidates are scanned in ascending vertex order from a wrapping cursor, so repeated
/// firings rotate through the boundary instead of re-picking the same (possibly crashed)
/// vertices. The policy only acts on processes that expose a monotone coverage set; a
/// memoryless process has no "covered but inactive" boundary to re-seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ReseedPolicy {
    m: AdversaryBudget,
    cooldown: usize,
    cooldown_left: usize,
    cursor: VertexId,
    targets: Vec<VertexId>,
}

impl ReseedPolicy {
    /// A reviver with budget `m` (resolved against `n` at fire time) and `cooldown`
    /// rounds of sleep after each firing.
    pub fn new(m: AdversaryBudget, cooldown: usize) -> Self {
        ReseedPolicy { m, cooldown, cooldown_left: 0, cursor: 0, targets: Vec::new() }
    }
}

impl DefensePolicy for ReseedPolicy {
    // cobra-lint: hot
    // cobra-lint: draws(0)
    fn observe(&mut self, view: &ProcessView<'_>, _rng: &mut dyn RngCore) {
        self.targets.clear();
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return;
        }
        // Fire only on total frontier death — the one failure boosting cannot fix.
        if view.num_active() > 0 || view.is_complete() {
            return;
        }
        let Some(covered) = view.coverage() else { return };
        let n = view.num_vertices();
        let quota = self.m.resolve(n);
        if quota == 0 {
            return;
        }
        let graph = view.graph();
        let start = if self.cursor < n { self.cursor } else { 0 };
        let mut v = start;
        for _ in 0..n {
            if self.targets.len() >= quota {
                break;
            }
            if covered.contains(v) && graph.neighbor_iter(v).any(|u| !covered.contains(u)) {
                self.targets.push(v);
            }
            v += 1;
            if v >= n {
                v = 0;
            }
        }
        if let Some(&last) = self.targets.last() {
            self.cursor = (last + 1) % n;
            self.cooldown_left = self.cooldown;
        }
    }

    fn actions(&self) -> DefenseActions<'_> {
        DefenseActions { k_multiplier: 1, reseed: &self.targets, backoff: 0 }
    }

    fn reset(&mut self) {
        self.cooldown_left = 0;
        self.cursor = 0;
        self.targets.clear();
    }
}

/// Ceiling for the `adaptivek` servo — generous headroom without letting a mis-tuned
/// estimate blow the transmission budget up unboundedly.
const ADAPTIVE_K_CAP: u32 = 8;

/// The `def=adaptivek` servo: steers the branching multiplier so the observed per-round
/// coverage growth tracks the growth-ratio closed form
/// `|A|·(1 + (1−λ²)(1−|A|/n))` of [`growth_lower_bound`](crate::growth::growth_lower_bound).
///
/// The spectral slack `1−λ²` is not observable at run time, so the policy keeps an online
/// estimate: each round's realised ratio implies a slack `(ratio − 1)/(1 − |A|/n)`, folded
/// into an exponential moving average. When the realised ratio falls below the target the
/// estimate implies, the multiplier steps up (capped); when growth meets the target it
/// steps back down — a deadbeat servo with unit steps.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveKPolicy {
    multiplier: u32,
    prev_coverage: usize,
    slack_estimate: f64,
}

impl AdaptiveKPolicy {
    /// A fresh servo (multiplier 1, no slack estimate yet).
    pub fn new() -> Self {
        AdaptiveKPolicy { multiplier: 1, prev_coverage: 0, slack_estimate: 0.0 }
    }

    /// The multiplier currently in force.
    pub fn multiplier(&self) -> u32 {
        self.multiplier
    }
}

impl Default for AdaptiveKPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl DefensePolicy for AdaptiveKPolicy {
    // cobra-lint: hot
    // cobra-lint: draws(0)
    fn observe(&mut self, view: &ProcessView<'_>, _rng: &mut dyn RngCore) {
        let covered = view.coverage().map_or_else(|| view.num_active(), VertexBitset::count);
        if view.is_complete() || covered == 0 {
            self.multiplier = 1;
            self.prev_coverage = covered;
            return;
        }
        let n = view.num_vertices() as f64;
        if self.prev_coverage > 0 {
            let prev = self.prev_coverage as f64;
            let headroom = 1.0 - prev / n;
            if headroom > 0.0 {
                let ratio = covered as f64 / prev;
                let implied = ((ratio - 1.0) / headroom).clamp(0.0, 1.0);
                // EMA so early explosive growth does not pin the target unreachably high.
                self.slack_estimate = 0.9 * self.slack_estimate + 0.1 * implied;
                let target = 1.0 + self.slack_estimate * headroom;
                if ratio + 1e-9 < target {
                    self.multiplier = (self.multiplier + 1).min(ADAPTIVE_K_CAP);
                } else {
                    self.multiplier = self.multiplier.saturating_sub(1).max(1);
                }
            }
        }
        self.prev_coverage = covered;
    }

    fn actions(&self) -> DefenseActions<'_> {
        DefenseActions { k_multiplier: self.multiplier, reseed: &[], backoff: 0 }
    }

    fn reset(&mut self) {
        self.multiplier = 1;
        self.prev_coverage = 0;
        self.slack_estimate = 0.0;
    }
}

/// A serializable description of a defense policy, attached to a [`FaultPlan`] with a
/// `def=` clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DefenseSpec {
    /// `def=passive` — the no-op bit-identity baseline.
    Passive,
    /// `def=boostk:trigger=stall,w=8,cap=4` — AIMD branching boost on coverage stall.
    BoostK {
        /// Consecutive stalled rounds before the multiplier escalates.
        window: usize,
        /// Ceiling for the multiplier.
        cap: u32,
    },
    /// `def=reseed:m=1%,cooldown=16` — frontier-death revival from the coverage boundary.
    Reseed {
        /// How many vertices each firing may re-activate.
        m: AdversaryBudget,
        /// Rounds to sleep after a firing.
        cooldown: usize,
    },
    /// `def=adaptivek:target=growth-ratio` — servo toward the growth-ratio closed form.
    AdaptiveK,
}

impl DefenseSpec {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] for a zero stall window, a boost cap
    /// below 2 (a cap of 1 can never boost), or an out-of-range re-seed budget.
    pub fn validate(&self) -> Result<()> {
        match self {
            DefenseSpec::Passive | DefenseSpec::AdaptiveK => Ok(()),
            DefenseSpec::BoostK { window, cap } => {
                if *window == 0 {
                    return Err(CoreError::InvalidParameters {
                        reason: "def=boostk stall window w must be at least 1 round".to_string(),
                    });
                }
                if *cap < 2 {
                    return Err(CoreError::InvalidParameters {
                        reason: format!("def=boostk cap {cap} can never boost; need cap >= 2"),
                    });
                }
                Ok(())
            }
            DefenseSpec::Reseed { m, cooldown: _ } => m.validate(),
        }
    }

    /// Instantiates the policy this spec describes.
    ///
    /// # Errors
    ///
    /// Propagates [`validate`](DefenseSpec::validate) failures.
    pub fn build_policy(&self) -> Result<Box<dyn DefensePolicy>> {
        self.validate()?;
        Ok(match self {
            DefenseSpec::Passive => Box::new(PassivePolicy),
            DefenseSpec::BoostK { window, cap } => Box::new(BoostKPolicy::new(*window, *cap)),
            DefenseSpec::Reseed { m, cooldown } => {
                Box::new(ReseedPolicy::new(m.clone(), *cooldown))
            }
            DefenseSpec::AdaptiveK => Box::new(AdaptiveKPolicy::new()),
        })
    }
}

/// Emits the canonical clause-value form (`passive`, `boostk:trigger=stall,w=8,cap=4`,
/// `reseed:m=1%,cooldown=16`, `adaptivek:target=growth-ratio`) that [`FromStr`] parses
/// back. Unlike the adversary clause, parameters are always spelled out — defense specs
/// land verbatim in experiment tables, where explicit knobs read better than defaults.
impl fmt::Display for DefenseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefenseSpec::Passive => write!(f, "passive"),
            DefenseSpec::BoostK { window, cap } => {
                write!(f, "boostk:trigger=stall,w={window},cap={cap}")
            }
            DefenseSpec::Reseed { m, cooldown } => write!(f, "reseed:m={m},cooldown={cooldown}"),
            DefenseSpec::AdaptiveK => write!(f, "adaptivek:target=growth-ratio"),
        }
    }
}

impl FromStr for DefenseSpec {
    type Err = CoreError;

    fn from_str(text: &str) -> Result<Self> {
        let invalid = |reason: String| CoreError::InvalidParameters { reason };
        let (name, rest) = match text.split_once(':') {
            Some((name, rest)) => (name.trim(), rest),
            None => (text.trim(), ""),
        };
        // Policy arguments are a comma-separated key=value list, like adversary clauses.
        let mut args: Vec<(String, String)> = Vec::new();
        for token in rest.split(',').filter(|t| !t.is_empty()) {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| invalid(format!("defense argument {token:?} must be key=value")))?;
            args.push((key.trim().to_string(), value.trim().to_string()));
        }
        let mut take = |key: &str| -> Option<String> {
            let index = args.iter().position(|(k, _)| k == key)?;
            Some(args.remove(index).1)
        };
        let spec = match name.to_ascii_lowercase().as_str() {
            "passive" => DefenseSpec::Passive,
            "boostk" => {
                if let Some(trigger) = take("trigger") {
                    if trigger != "stall" {
                        return Err(invalid(format!(
                            "def=boostk trigger {trigger:?} is not supported (only \
                             trigger=stall)"
                        )));
                    }
                }
                let window = match take("w") {
                    Some(value) => value.parse().map_err(|_| {
                        invalid(format!("invalid def=boostk stall window {value:?}"))
                    })?,
                    None => 8,
                };
                let cap = match take("cap") {
                    Some(value) => value
                        .parse()
                        .map_err(|_| invalid(format!("invalid def=boostk cap {value:?}")))?,
                    None => 4,
                };
                DefenseSpec::BoostK { window, cap }
            }
            "reseed" => {
                let m = match take("m") {
                    Some(value) => AdversaryBudget::parse(&value)?,
                    None => AdversaryBudget::Percent { percent: 1.0 },
                };
                let cooldown = match take("cooldown") {
                    Some(value) => value
                        .parse()
                        .map_err(|_| invalid(format!("invalid def=reseed cooldown {value:?}")))?,
                    None => 16,
                };
                DefenseSpec::Reseed { m, cooldown }
            }
            "adaptivek" => {
                if let Some(target) = take("target") {
                    if target != "growth-ratio" {
                        return Err(invalid(format!(
                            "def=adaptivek target {target:?} is not supported (only \
                             target=growth-ratio)"
                        )));
                    }
                }
                DefenseSpec::AdaptiveK
            }
            other => {
                return Err(invalid(format!(
                    "unknown defense policy {other:?} (expected passive, boostk, reseed or \
                     adaptivek)"
                )));
            }
        };
        if let Some((key, _)) = args.first() {
            return Err(invalid(format!("unknown def={name} argument {key:?}")));
        }
        spec.validate()?;
        Ok(spec)
    }
}

/// Wraps any boxed process so a [`DefensePolicy`] observes it before every round and
/// applies that round's recovery levers.
///
/// This is the **outermost** wrapper: the policy sees the pre-round state, re-seeds and
/// boosts first, and only then does the inner process (possibly adversarial) step — so an
/// adaptive adversary observes the post-recovery state and the arms race is fair. The
/// wrapper does *not* forward [`set_branching_boost`](SpreadingProcess::set_branching_boost)
/// or [`reseed`](SpreadingProcess::reseed) from outside: the defense layer owns those
/// levers, and an outer caller fighting the policy for them would make the cost ledger
/// meaningless.
pub struct DefendedProcess<'g> {
    inner: Box<dyn SpreadingProcess + Send + 'g>,
    graph: &'g Graph,
    policy: Box<dyn DefensePolicy>,
    /// The multiplier currently programmed into the inner process, so the inert path
    /// (multiplier 1 on both sides) makes zero hook calls.
    applied_multiplier: u32,
    stats: DefenseStats,
}

impl fmt::Debug for DefendedProcess<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DefendedProcess")
            .field("policy", &self.policy)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<'g> DefendedProcess<'g> {
    /// Wraps `inner` (which must run on `graph`) under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `graph` is not the instance `inner`
    /// runs on.
    pub fn new(
        inner: Box<dyn SpreadingProcess + Send + 'g>,
        graph: &'g Graph,
        policy: Box<dyn DefensePolicy>,
    ) -> Result<Self> {
        let n = graph.num_vertices();
        if inner.num_vertices() != n {
            return Err(CoreError::InvalidParameters {
                reason: format!(
                    "defense graph has {n} vertices but the process runs on {}",
                    inner.num_vertices()
                ),
            });
        }
        Ok(DefendedProcess {
            inner,
            graph,
            policy,
            applied_multiplier: 1,
            stats: DefenseStats::default(),
        })
    }

    /// The active policy.
    pub fn policy(&self) -> &dyn DefensePolicy {
        self.policy.as_ref()
    }

    /// The wrapped process.
    pub fn inner(&self) -> &dyn SpreadingProcess {
        self.inner.as_ref()
    }

    /// What the defense has spent so far this trial.
    pub fn stats(&self) -> DefenseStats {
        self.stats
    }
}

impl SpreadingProcess for DefendedProcess<'_> {
    // cobra-lint: hot
    // cobra-lint: draws(bounded)
    fn step_faulted(&mut self, rng: &mut dyn RngCore, outer: &StepFaults<'_>) {
        self.policy.observe(&ProcessView::new(self.inner.as_ref(), self.graph), rng);
        let actions = self.policy.actions();
        let multiplier = actions.k_multiplier.max(1);
        if !actions.reseed.is_empty() {
            let inserted = self.inner.reseed(actions.reseed);
            if inserted > 0 {
                self.stats.reseed_events += 1;
                self.stats.reseeded_vertices += inserted;
            }
        }
        // Re-program the multiplier whenever it changes, and re-poll the per-round cost
        // whenever it is in force (the cost depends on the current frontier). On the inert
        // path (1 applied, 1 requested) this makes no hook call at all.
        if multiplier != self.applied_multiplier || multiplier > 1 {
            let extra = self.inner.set_branching_boost(multiplier);
            self.applied_multiplier = multiplier;
            if multiplier > 1 {
                self.stats.boost_rounds += 1;
                self.stats.extra_transmissions += extra;
            }
        }
        if actions.backoff > 0 {
            // Mute our own transmissions: compose a unit drop over the outer faults.
            self.stats.backoff_rounds += 1;
            let muted = StepFaults::new(1.0, outer.crashed_set())
                .with_targeted(outer.targeted_drop_probability(), outer.targeted_set())
                .with_partition(outer.severed_side());
            self.inner.step_faulted(rng, &muted);
        } else {
            self.inner.step_faulted(rng, outer);
        }
    }

    // Stream mode: the policy's observation draws come from the reserved DEFENSE_ENTITY
    // stream at the current round; lever accounting mirrors step_faulted's.
    // cobra-lint: par
    // cobra-lint: draws(bounded)
    fn step_streams(
        &mut self,
        engine: &crate::parallel::ParallelFrontier,
        outer: &StepFaults<'_>,
    ) -> Result<()> {
        let mut rng = engine.stream(crate::parallel::DEFENSE_ENTITY, self.inner.round() as u64);
        self.policy.observe(&ProcessView::new(self.inner.as_ref(), self.graph), &mut rng);
        let actions = self.policy.actions();
        let multiplier = actions.k_multiplier.max(1);
        if !actions.reseed.is_empty() {
            let inserted = self.inner.reseed(actions.reseed);
            if inserted > 0 {
                self.stats.reseed_events += 1;
                self.stats.reseeded_vertices += inserted;
            }
        }
        if multiplier != self.applied_multiplier || multiplier > 1 {
            let extra = self.inner.set_branching_boost(multiplier);
            self.applied_multiplier = multiplier;
            if multiplier > 1 {
                self.stats.boost_rounds += 1;
                self.stats.extra_transmissions += extra;
            }
        }
        if actions.backoff > 0 {
            self.stats.backoff_rounds += 1;
            let muted = StepFaults::new(1.0, outer.crashed_set())
                .with_targeted(outer.targeted_drop_probability(), outer.targeted_set())
                .with_partition(outer.severed_side());
            self.inner.step_streams(engine, &muted)
        } else {
            self.inner.step_streams(engine, outer)
        }
    }

    fn supports_streams(&self) -> bool {
        self.inner.supports_streams()
    }

    fn round(&self) -> usize {
        self.inner.round()
    }

    fn active(&self) -> &VertexBitset {
        self.inner.active()
    }

    fn num_active(&self) -> usize {
        self.inner.num_active()
    }

    fn newly_activated(&self) -> &[VertexId] {
        self.inner.newly_activated()
    }

    fn for_each_active(&self, f: &mut dyn FnMut(VertexId)) {
        self.inner.for_each_active(f);
    }

    fn for_each_token(&self, f: &mut dyn FnMut(VertexId)) {
        self.inner.for_each_token(f);
    }

    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    fn coverage(&self) -> Option<&VertexBitset> {
        self.inner.coverage()
    }

    fn adopt_state(&mut self, active: &[VertexId], coverage: Option<&VertexBitset>) -> Result<()> {
        self.inner.adopt_state(active, coverage)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.policy.reset();
        self.applied_multiplier = 1;
        self.stats = DefenseStats::default();
    }
}

/// Builds the defended process a plan with a `def=` clause describes: the inner spec —
/// wrapped adversarially when an `adv=` clause remains, faulted when only oblivious
/// clauses remain — enclosed in the outermost [`DefendedProcess`].
///
/// Returns the concrete wrapper (not a boxed trait object) so callers can read
/// [`DefenseStats`] after a run; [`ProcessSpec::build`](crate::spec::ProcessSpec::build)
/// boxes it for the generic pipeline.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameters`] for a plan without a `def=` clause or with a
/// `churn=` clause (churned specs run through
/// [`fault::run_churned`](crate::fault::run_churned), which strips churn per segment), and
/// propagates process-construction and policy validation failures.
pub fn build_defended<'g>(
    inner: &ProcessSpec,
    plan: &FaultPlan,
    graph: &'g Graph,
) -> Result<DefendedProcess<'g>> {
    let Some(defense) = &plan.defense else {
        return Err(CoreError::InvalidParameters {
            reason: "build_defended requires a plan with a def= clause".to_string(),
        });
    };
    if plan.churn.is_some() {
        return Err(CoreError::InvalidParameters {
            reason: "churn= re-instantiates the graph and cannot run on a fixed instance; \
                     drive the spec through fault::run_churned (repro ad-hoc mode does this \
                     automatically)"
                .to_string(),
        });
    }
    let mut residual = plan.clone();
    residual.defense = None;
    let process: Box<dyn SpreadingProcess + Send + 'g> = if residual.adversary.is_some() {
        build_adversarial(inner, &residual, graph)?
    } else if !residual.is_benign() {
        let protect = inner.start();
        Box::new(FaultedProcess::new(inner.build(graph)?, &residual, protect)?)
    } else {
        inner.build(graph)?
    };
    let policy = defense.build_policy()?;
    DefendedProcess::new(process, graph, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::run_until_complete;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    fn examples() -> Vec<DefenseSpec> {
        vec![
            DefenseSpec::Passive,
            DefenseSpec::BoostK { window: 8, cap: 4 },
            DefenseSpec::BoostK { window: 3, cap: 16 },
            DefenseSpec::Reseed { m: AdversaryBudget::Percent { percent: 1.0 }, cooldown: 16 },
            DefenseSpec::Reseed { m: AdversaryBudget::Count { count: 3 }, cooldown: 0 },
            DefenseSpec::AdaptiveK,
        ]
    }

    #[test]
    fn spec_parse_and_display_round_trip() {
        for spec in examples() {
            let text = spec.to_string();
            let back: DefenseSpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(spec, back, "round trip through {text:?}");
        }
        // Omitted arguments fill in the documented defaults.
        assert_eq!(
            "boostk".parse::<DefenseSpec>().unwrap(),
            DefenseSpec::BoostK { window: 8, cap: 4 }
        );
        assert_eq!(
            "boostk:w=3".parse::<DefenseSpec>().unwrap(),
            DefenseSpec::BoostK { window: 3, cap: 4 }
        );
        assert_eq!(
            "reseed".parse::<DefenseSpec>().unwrap(),
            DefenseSpec::Reseed { m: AdversaryBudget::Percent { percent: 1.0 }, cooldown: 16 }
        );
        assert_eq!("adaptivek".parse::<DefenseSpec>().unwrap(), DefenseSpec::AdaptiveK);
    }

    #[test]
    fn spec_serde_round_trip() {
        for spec in examples() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: DefenseSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "serde round trip through {json}");
        }
    }

    #[test]
    fn spec_parsing_rejects_junk() {
        assert!("shield".parse::<DefenseSpec>().is_err());
        assert!("passive:x=1".parse::<DefenseSpec>().is_err());
        assert!("boostk:trigger=".parse::<DefenseSpec>().is_err());
        assert!("boostk:trigger=panic".parse::<DefenseSpec>().is_err());
        assert!("boostk:w=0".parse::<DefenseSpec>().is_err());
        assert!("boostk:w=abc".parse::<DefenseSpec>().is_err());
        assert!("boostk:cap=1".parse::<DefenseSpec>().is_err());
        assert!("boostk:bogus=1".parse::<DefenseSpec>().is_err());
        assert!("reseed:m=150%".parse::<DefenseSpec>().is_err());
        assert!("reseed:m=abc".parse::<DefenseSpec>().is_err());
        assert!("reseed:cooldown=abc".parse::<DefenseSpec>().is_err());
        assert!("adaptivek:target=foo".parse::<DefenseSpec>().is_err());
        assert!("adaptivek:target=".parse::<DefenseSpec>().is_err());
    }

    #[test]
    fn passive_defense_is_bit_identical_to_bare() {
        let graph = generators::hypercube(6).unwrap();
        let base: ProcessSpec = "cobra:k=2".parse().unwrap();
        let mut bare = base.build(&graph).unwrap();
        let mut defended =
            DefendedProcess::new(base.build(&graph).unwrap(), &graph, Box::new(PassivePolicy))
                .unwrap();
        let (mut r1, mut r2) = (rng(42), rng(42));
        for round in 0..40 {
            bare.step(&mut r1);
            defended.step(&mut r2);
            assert_eq!(
                bare.active().iter().collect::<Vec<_>>(),
                defended.active().iter().collect::<Vec<_>>(),
                "round {round}: passive defense must not perturb the trajectory"
            );
        }
        assert_eq!(defended.stats(), DefenseStats::default());
    }

    #[test]
    fn boostk_escalates_on_stall_and_decays_on_growth() {
        let graph = generators::complete(16).unwrap();
        let base: ProcessSpec = "cobra:k=2".parse().unwrap();
        let process = base.build(&graph).unwrap();
        let mut policy = BoostKPolicy::new(3, 8);
        let mut r = rng(1);
        let view = ProcessView::new(process.as_ref(), &graph);
        // Round 1 records the first high-water mark (coverage 1 > 0); no stall yet.
        policy.observe(&view, &mut r);
        assert_eq!(policy.multiplier(), 1);
        // Freeze the process: every further observation sees the same coverage, so after
        // each full window the multiplier doubles, capped.
        for _ in 0..3 {
            policy.observe(&view, &mut r);
        }
        assert_eq!(policy.multiplier(), 2);
        for _ in 0..3 {
            policy.observe(&view, &mut r);
        }
        assert_eq!(policy.multiplier(), 4);
        for _ in 0..6 {
            policy.observe(&view, &mut r);
        }
        assert_eq!(policy.multiplier(), 8, "cap binds");
        // Growth resumes: additive decay, one step per improving round.
        let mut grown = base.build(&graph).unwrap();
        grown.step(&mut rng(2));
        let grown_view = ProcessView::new(grown.as_ref(), &graph);
        policy.observe(&grown_view, &mut r);
        assert_eq!(policy.multiplier(), 7);
        policy.reset();
        assert_eq!(policy.multiplier(), 1);
    }

    #[test]
    fn reseed_fires_only_on_frontier_death_and_rotates_through_the_boundary() {
        let graph = generators::cycle(8).unwrap();
        let base: ProcessSpec = "cobra:k=2".parse().unwrap();
        let mut process = base.build(&graph).unwrap();
        let mut policy = ReseedPolicy::new(AdversaryBudget::Count { count: 1 }, 2);
        let mut r = rng(5);
        // A live frontier never triggers the policy.
        policy.observe(&ProcessView::new(process.as_ref(), &graph), &mut r);
        assert!(policy.actions().is_inert());
        // Kill the frontier with partial coverage {0, 1, 2}: the boundary candidates are
        // 0 (uncovered neighbour 7) and 2 (uncovered neighbour 3); 1 is interior.
        let mut covered = VertexBitset::new(8);
        for v in [0, 1, 2] {
            covered.insert(v);
        }
        process.adopt_state(&[], Some(&covered)).unwrap();
        policy.observe(&ProcessView::new(process.as_ref(), &graph), &mut r);
        assert_eq!(policy.actions().reseed, &[0]);
        // The cooldown mutes the next firings even though the frontier is still dead.
        policy.observe(&ProcessView::new(process.as_ref(), &graph), &mut r);
        assert!(policy.actions().is_inert());
        policy.observe(&ProcessView::new(process.as_ref(), &graph), &mut r);
        assert!(policy.actions().is_inert());
        // Cooldown over: the cursor has rotated past 0, so the other boundary vertex is
        // picked instead of hammering the same one.
        policy.observe(&ProcessView::new(process.as_ref(), &graph), &mut r);
        assert_eq!(policy.actions().reseed, &[2]);
    }

    #[test]
    fn adaptivek_boosts_when_growth_lags_and_resets_on_completion() {
        let graph = generators::complete(16).unwrap();
        let base: ProcessSpec = "cobra:k=2".parse().unwrap();
        let mut process = base.build(&graph).unwrap();
        let mut policy = AdaptiveKPolicy::new();
        let mut r = rng(9);
        // Grow once so the servo has a ratio to learn from, then freeze the process: the
        // realised ratio collapses to 1 while headroom remains, so the multiplier climbs.
        policy.observe(&ProcessView::new(process.as_ref(), &graph), &mut r);
        process.step(&mut rng(3));
        policy.observe(&ProcessView::new(process.as_ref(), &graph), &mut r);
        for _ in 0..12 {
            policy.observe(&ProcessView::new(process.as_ref(), &graph), &mut r);
        }
        assert!(policy.multiplier() > 1, "a stalled run must pull the servo up");
        assert!(policy.multiplier() <= ADAPTIVE_K_CAP);
        // Completion releases the boost entirely.
        run_until_complete(process.as_mut(), &mut rng(4), 10_000).unwrap();
        policy.observe(&ProcessView::new(process.as_ref(), &graph), &mut r);
        assert_eq!(policy.multiplier(), 1);
    }

    #[test]
    fn defended_process_revives_a_dead_frontier_and_accounts_the_cost() {
        let graph = generators::complete(16).unwrap();
        let base: ProcessSpec = "cobra:k=2".parse().unwrap();
        let mut covered = VertexBitset::new(16);
        for v in 0..8 {
            covered.insert(v);
        }
        let mut inner = base.build(&graph).unwrap();
        inner.adopt_state(&[], Some(&covered)).unwrap();
        assert_eq!(inner.num_active(), 0, "the frontier starts dead");
        let policy = Box::new(ReseedPolicy::new(AdversaryBudget::Count { count: 2 }, 4));
        let mut defended = DefendedProcess::new(inner, &graph, policy).unwrap();
        let rounds = run_until_complete(&mut defended, &mut rng(11), 10_000);
        assert!(rounds.is_some(), "re-seeding must revive the dead run to completion");
        let stats = defended.stats();
        assert!(stats.reseed_events >= 1);
        assert!(stats.reseeded_vertices >= 1);
        assert_eq!(stats.boost_rounds, 0, "reseed never touches the branching lever");
    }

    /// Test-local policy exercising the constant-boost and backoff levers directly.
    #[derive(Debug)]
    struct FixedActions {
        multiplier: u32,
        backoff: usize,
    }

    impl DefensePolicy for FixedActions {
        fn observe(&mut self, _view: &ProcessView<'_>, _rng: &mut dyn RngCore) {}

        fn actions(&self) -> DefenseActions<'_> {
            DefenseActions { k_multiplier: self.multiplier, reseed: &[], backoff: self.backoff }
        }

        fn reset(&mut self) {}
    }

    #[test]
    fn constant_boost_is_charged_every_round() {
        let graph = generators::complete(16).unwrap();
        let base: ProcessSpec = "cobra:k=2".parse().unwrap();
        let policy = Box::new(FixedActions { multiplier: 3, backoff: 0 });
        let mut defended =
            DefendedProcess::new(base.build(&graph).unwrap(), &graph, policy).unwrap();
        let mut r = rng(13);
        for _ in 0..5 {
            defended.step(&mut r);
        }
        let stats = defended.stats();
        assert_eq!(stats.boost_rounds, 5);
        assert!(stats.extra_transmissions > 0.0, "a forced 3x boost costs transmissions");
    }

    #[test]
    fn backoff_mutes_the_processes_own_transmissions() {
        let graph = generators::complete(16).unwrap();
        let base: ProcessSpec = "push".parse().unwrap();
        let policy = Box::new(FixedActions { multiplier: 1, backoff: 1 });
        let mut defended =
            DefendedProcess::new(base.build(&graph).unwrap(), &graph, policy).unwrap();
        let mut r = rng(17);
        for _ in 0..10 {
            defended.step(&mut r);
        }
        assert_eq!(defended.num_active(), 1, "a permanently backed-off PUSH never spreads");
        assert_eq!(defended.stats().backoff_rounds, 10);
    }

    #[test]
    fn reset_clears_policy_state_and_the_cost_ledger() {
        let graph = generators::complete(16).unwrap();
        let base: ProcessSpec = "cobra:k=2".parse().unwrap();
        let policy = Box::new(FixedActions { multiplier: 3, backoff: 0 });
        let mut defended =
            DefendedProcess::new(base.build(&graph).unwrap(), &graph, policy).unwrap();
        let mut r = rng(19);
        for _ in 0..3 {
            defended.step(&mut r);
        }
        assert!(defended.stats().boost_rounds > 0);
        defended.reset();
        assert_eq!(defended.stats(), DefenseStats::default());
        assert_eq!(defended.round(), 0);
        assert_eq!(defended.num_active(), 1);
    }

    #[test]
    fn build_defended_rejects_missing_def_and_churn() {
        let graph = generators::complete(8).unwrap();
        let base: ProcessSpec = "cobra:k=2".parse().unwrap();
        let no_def = FaultPlan::default();
        assert!(build_defended(&base, &no_def, &graph).is_err());
        let churned: ProcessSpec = "cobra:k=2+churn=64+def=passive".parse().unwrap();
        let (inner, plan) = match &churned {
            ProcessSpec::Faulted { inner, plan } => (inner.as_ref(), plan),
            other => panic!("expected a faulted spec, got {other:?}"),
        };
        assert!(build_defended(inner, plan, &graph).is_err());
    }
}
