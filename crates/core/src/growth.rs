//! Empirical verification of the one-step growth bound (Lemma 1 / Corollary 1).
//!
//! Lemma 1 states that for BIPS with `k = 2` on an `r`-regular graph with second eigenvalue
//! `λ`, the conditional expectation of the next infected-set size satisfies
//!
//! ```text
//! E(|A_{t+1}| | A_t = A)  ≥  |A| · (1 + (1-λ²)(1 - |A|/n)),
//! ```
//!
//! and Corollary 1 gives the analogous bound with an extra factor `ρ` for the fractional
//! branching `1 + ρ`. This module computes the exact conditional expectation for a *given*
//! infected set (a sum of independent Bernoulli means — no sampling needed), estimates it by
//! Monte Carlo as a cross-check, and evaluates the theoretical lower bound.

use cobra_graph::{sample, Graph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::bips::BipsProcess;
use crate::cobra::Branching;
use crate::process::SpreadingProcess;
use crate::{CoreError, Result};

/// The exact conditional expectation `E(|A_{t+1}| | A_t = A)` for the BIPS process.
///
/// The next-round states of distinct vertices are independent given `A_t`, so the expectation
/// is simply `1 + Σ_{u ≠ source} P(u samples an infected neighbour)` — computed in closed form,
/// no randomness involved.
///
/// # Errors
///
/// Returns [`CoreError::VertexOutOfRange`] for an out-of-range source or set member and
/// [`CoreError::InvalidParameters`] if the source is not a member of `infected`.
pub fn exact_expected_next_size(
    graph: &Graph,
    source: VertexId,
    infected: &[VertexId],
    branching: Branching,
) -> Result<f64> {
    let n = graph.num_vertices();
    if source >= n {
        return Err(CoreError::VertexOutOfRange { vertex: source, num_vertices: n });
    }
    if let Some(&bad) = infected.iter().find(|&&v| v >= n) {
        return Err(CoreError::VertexOutOfRange { vertex: bad, num_vertices: n });
    }
    if !infected.contains(&source) {
        return Err(CoreError::InvalidParameters {
            reason: "the persistent source must belong to the infected set".to_string(),
        });
    }
    if matches!(branching, Branching::PerVertex { .. }) {
        // Mirrors `BipsProcess::new`: a per-sender degree budget has no meaning for pulls.
        return Err(CoreError::InvalidParameters {
            reason: "k=deg budgets are a COBRA (push) feature and undefined for BIPS".to_string(),
        });
    }
    let mut is_infected = vec![false; n];
    for &v in infected {
        is_infected[v] = true;
    }
    let mut expectation = 1.0; // the source
    for u in 0..n {
        if u == source {
            continue;
        }
        let degree = graph.degree(u);
        if degree == 0 {
            continue;
        }
        let hits = graph.neighbors(u).iter().filter(|&&w| is_infected[w]).count();
        let q = hits as f64 / degree as f64;
        let p = match branching {
            Branching::Fixed { k } => 1.0 - (1.0 - q).powi(k as i32),
            Branching::Fractional { rho } => 1.0 - (1.0 - q) * (1.0 - rho * q),
            Branching::PerVertex { .. } => unreachable!("rejected at entry"),
        };
        expectation += p;
    }
    Ok(expectation)
}

/// The Lemma 1 lower bound `|A| (1 + (1-λ²)(1 - |A|/n))` for `k = 2`, or the Corollary 1
/// bound `|A| (1 + ρ(1-λ²)(1 - |A|/n))` for fractional branching `1 + ρ`.
pub fn growth_lower_bound(set_size: usize, n: usize, lambda: f64, branching: Branching) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let a = set_size as f64;
    let slack = (1.0 - lambda * lambda) * (1.0 - a / n as f64);
    match branching {
        // The paper proves the k = 2 bound; larger k only helps, so the same expression is a
        // valid (slacker) lower bound for k >= 2. For k = 1 only the trivial bound |A| holds.
        Branching::Fixed { k } => {
            if k >= 2 {
                a * (1.0 + slack)
            } else {
                a
            }
        }
        Branching::Fractional { rho } => a * (1.0 + rho * slack),
        // A degree budget guarantees only one push on degree-1 vertices, so (without the
        // graph's degree sequence in hand) only the trivial bound |A| is safe.
        Branching::PerVertex { .. } => a,
    }
}

/// Monte-Carlo estimate of `E(|A_{t+1}| | A_t = A)`: performs `trials` independent single BIPS
/// steps from the state `A` and averages the resulting sizes.
///
/// # Errors
///
/// Same validation errors as [`exact_expected_next_size`].
// cobra-lint: draws(bounded)
pub fn sampled_expected_next_size<R: Rng + ?Sized>(
    graph: &Graph,
    source: VertexId,
    infected: &[VertexId],
    branching: Branching,
    trials: usize,
    rng: &mut R,
) -> Result<f64> {
    // Validate inputs through the exact routine (also gives us a correctness anchor).
    let _ = exact_expected_next_size(graph, source, infected, branching)?;
    let n = graph.num_vertices();
    let mut is_infected = vec![false; n];
    for &v in infected {
        is_infected[v] = true;
    }
    let mut total = 0usize;
    for _ in 0..trials {
        let mut next = 0usize;
        for u in 0..n {
            if u == source {
                next += 1;
                continue;
            }
            let neighbors = graph.neighbors(u);
            if neighbors.is_empty() {
                continue;
            }
            let samples = branching.sample_pushes(rng);
            let hit = (0..samples)
                .any(|_| is_infected[*sample::sample_slice(neighbors, rng).expect("non-empty")]);
            if hit {
                next += 1;
            }
        }
        total += next;
    }
    Ok(total as f64 / trials.max(1) as f64)
}

/// One row of a growth-bound audit: an infected set size, the exact conditional expectation of
/// the next size, and the theoretical lower bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthObservation {
    /// Size of the conditioning set `|A_t|`.
    pub set_size: usize,
    /// Exact `E(|A_{t+1}| | A_t)`.
    pub expected_next: f64,
    /// The Lemma 1 / Corollary 1 lower bound for this size.
    pub lower_bound: f64,
}

impl GrowthObservation {
    /// Whether the bound holds (with a small numerical tolerance).
    pub fn bound_holds(&self) -> bool {
        self.expected_next + 1e-9 >= self.lower_bound
    }
}

/// Audits the growth bound along an actual BIPS trajectory: runs the process for `rounds`
/// rounds and, at each round, records the exact conditional expectation for the *current*
/// infected set against the bound.
///
/// # Errors
///
/// Propagates construction errors from [`BipsProcess::new`].
// cobra-lint: draws(bounded)
pub fn audit_growth_along_trajectory<R: Rng + ?Sized>(
    graph: &Graph,
    source: VertexId,
    branching: Branching,
    lambda: f64,
    rounds: usize,
    mut rng: &mut R,
) -> Result<Vec<GrowthObservation>> {
    let mut process = BipsProcess::new(graph, source, branching)?;
    let n = graph.num_vertices();
    let mut observations = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        // O(|A_t|) via the frontier list instead of an O(n) indicator scan.
        let mut infected: Vec<VertexId> = Vec::with_capacity(process.num_infected());
        process.for_each_active(&mut |v| infected.push(v));
        let expected_next = exact_expected_next_size(graph, source, &infected, branching)?;
        observations.push(GrowthObservation {
            set_size: infected.len(),
            expected_next,
            lower_bound: growth_lower_bound(infected.len(), n, lambda, branching),
        });
        if process.is_complete() {
            break;
        }
        process.step(&mut rng);
    }
    Ok(observations)
}

/// Audits the growth bound on random infected sets of a given size (the conditioning the
/// lemma actually speaks about, independent of any trajectory).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameters`] if `set_size` is zero or exceeds `n`, and
/// propagates validation errors.
// cobra-lint: draws(bounded)
pub fn audit_growth_random_sets<R: Rng + ?Sized>(
    graph: &Graph,
    source: VertexId,
    branching: Branching,
    lambda: f64,
    set_size: usize,
    sets: usize,
    rng: &mut R,
) -> Result<Vec<GrowthObservation>> {
    let n = graph.num_vertices();
    if set_size == 0 || set_size > n {
        return Err(CoreError::InvalidParameters {
            reason: format!("set size {set_size} must be between 1 and {n}"),
        });
    }
    if source >= n {
        return Err(CoreError::VertexOutOfRange { vertex: source, num_vertices: n });
    }
    let mut others: Vec<VertexId> = (0..n).filter(|&v| v != source).collect();
    let mut observations = Vec::with_capacity(sets);
    for _ in 0..sets {
        others.shuffle(rng);
        let mut infected: Vec<VertexId> = vec![source];
        infected.extend(others.iter().copied().take(set_size - 1));
        let expected_next = exact_expected_next_size(graph, source, &infected, branching)?;
        observations.push(GrowthObservation {
            set_size,
            expected_next,
            lower_bound: growth_lower_bound(set_size, n, lambda, branching),
        });
    }
    Ok(observations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    fn k2() -> Branching {
        Branching::fixed(2).unwrap()
    }

    fn lambda_of(g: &cobra_graph::Graph) -> f64 {
        cobra_spectral::analyze(g).expect("spectral profile").lambda_abs
    }

    #[test]
    fn exact_expectation_on_the_complete_graph_matches_hand_computation() {
        // K_n, infected set of size a (including the source): every other vertex sees
        // a' = a or a-1 infected neighbours out of n-1.
        let n = 10;
        let g = generators::complete(n).unwrap();
        let infected: Vec<usize> = (0..4).collect();
        let expected = exact_expected_next_size(&g, 0, &infected, k2()).unwrap();
        let mut hand = 1.0;
        for u in 1..n {
            let hits = if u < 4 { 3.0 } else { 4.0 };
            let q: f64 = hits / (n as f64 - 1.0);
            hand += 1.0 - (1.0 - q) * (1.0 - q);
        }
        assert!((expected - hand).abs() < 1e-12);
    }

    #[test]
    fn exact_expectation_validates_inputs() {
        let g = generators::complete(5).unwrap();
        assert!(matches!(
            exact_expected_next_size(&g, 9, &[9], k2()),
            Err(CoreError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            exact_expected_next_size(&g, 0, &[0, 7], k2()),
            Err(CoreError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            exact_expected_next_size(&g, 0, &[1, 2], k2()),
            Err(CoreError::InvalidParameters { .. })
        ));
    }

    #[test]
    fn sampled_expectation_agrees_with_exact() {
        let g = generators::petersen().unwrap();
        let infected = vec![0, 1, 2, 5];
        let exact = exact_expected_next_size(&g, 0, &infected, k2()).unwrap();
        let sampled =
            sampled_expected_next_size(&g, 0, &infected, k2(), 20_000, &mut rng(1)).unwrap();
        assert!((exact - sampled).abs() < 0.1, "exact {exact} vs sampled {sampled}");
    }

    #[test]
    fn lemma_1_bound_holds_on_expanders_for_random_sets() {
        let mut r = rng(2);
        let g = generators::connected_random_regular(64, 4, &mut r).unwrap();
        let lambda = lambda_of(&g);
        for &size in &[1usize, 4, 16, 32, 48, 63] {
            let observations =
                audit_growth_random_sets(&g, 0, k2(), lambda, size, 20, &mut r).unwrap();
            for obs in observations {
                assert!(
                    obs.bound_holds(),
                    "size {size}: expected {} < bound {}",
                    obs.expected_next,
                    obs.lower_bound
                );
            }
        }
    }

    #[test]
    fn lemma_1_bound_holds_on_the_complete_graph_and_hypercube() {
        let mut r = rng(3);
        for g in [generators::complete(32).unwrap(), generators::hypercube(6).unwrap()] {
            let lambda = lambda_of(&g);
            for &size in &[1usize, 8, 16, 31] {
                let observations =
                    audit_growth_random_sets(&g, 0, k2(), lambda, size, 10, &mut r).unwrap();
                for obs in observations {
                    assert!(obs.bound_holds(), "graph {g:?} size {size}");
                }
            }
        }
    }

    #[test]
    fn corollary_1_bound_holds_for_fractional_branching() {
        let mut r = rng(4);
        let g = generators::connected_random_regular(48, 4, &mut r).unwrap();
        let lambda = lambda_of(&g);
        let branching = Branching::fractional(0.3).unwrap();
        for &size in &[1usize, 12, 24, 40] {
            let observations =
                audit_growth_random_sets(&g, 0, branching, lambda, size, 20, &mut r).unwrap();
            for obs in observations {
                assert!(
                    obs.bound_holds(),
                    "size {size}: expected {} < bound {}",
                    obs.expected_next,
                    obs.lower_bound
                );
            }
        }
    }

    #[test]
    fn bound_holds_along_actual_trajectories() {
        let mut r = rng(5);
        let g = generators::connected_random_regular(96, 3, &mut r).unwrap();
        let lambda = lambda_of(&g);
        let observations = audit_growth_along_trajectory(&g, 0, k2(), lambda, 200, &mut r).unwrap();
        assert!(!observations.is_empty());
        for obs in &observations {
            assert!(
                obs.bound_holds(),
                "size {}: {} < {}",
                obs.set_size,
                obs.expected_next,
                obs.lower_bound
            );
        }
        // The trajectory should eventually reach large sets.
        assert!(observations.iter().map(|o| o.set_size).max().unwrap() > 48);
    }

    #[test]
    fn growth_lower_bound_shape() {
        // Bound is largest (relative to |A|) for small sets and vanishes at |A| = n.
        let bound_small = growth_lower_bound(1, 100, 0.5, k2());
        assert!(bound_small > 1.0);
        let bound_full = growth_lower_bound(100, 100, 0.5, k2());
        assert!((bound_full - 100.0).abs() < 1e-12);
        assert_eq!(growth_lower_bound(5, 0, 0.5, k2()), 0.0);
        // Fractional bound interpolates with rho.
        let full = growth_lower_bound(10, 100, 0.3, k2());
        let half = growth_lower_bound(10, 100, 0.3, Branching::fractional(0.5).unwrap());
        let none = growth_lower_bound(10, 100, 0.3, Branching::fractional(0.0).unwrap());
        assert!(none < half && half < full);
        assert!((none - 10.0).abs() < 1e-12);
    }

    #[test]
    fn random_set_audit_validates_parameters() {
        let g = generators::complete(6).unwrap();
        let mut r = rng(6);
        assert!(audit_growth_random_sets(&g, 0, k2(), 0.2, 0, 3, &mut r).is_err());
        assert!(audit_growth_random_sets(&g, 0, k2(), 0.2, 7, 3, &mut r).is_err());
        assert!(audit_growth_random_sets(&g, 9, k2(), 0.2, 2, 3, &mut r).is_err());
    }
}
