//! Error type for process construction and measurement.

use std::error::Error;
use std::fmt;

/// Errors produced when configuring or running spreading processes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A start or source vertex is not a vertex of the graph.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: usize,
        /// Number of vertices of the graph.
        num_vertices: usize,
    },
    /// The graph cannot support the requested process (empty, has an isolated vertex that can
    /// never be reached, …).
    UnsuitableGraph {
        /// Description of the problem.
        reason: String,
    },
    /// Invalid process parameters (zero branching factor, probability outside `[0,1]`, …).
    InvalidParameters {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A process/fault/adversary spec string failed to parse. Carries the full offending
    /// input so callers surfacing the error (CLI, config files) can point at it without
    /// re-threading the string themselves.
    InvalidSpec {
        /// The spec string as given by the user.
        spec: String,
        /// Description of what is wrong with it.
        reason: String,
    },
    /// A run exceeded its round budget without completing.
    RoundBudgetExceeded {
        /// The budget that was exhausted.
        max_rounds: usize,
    },
    /// An exact computation was requested on a graph too large for it.
    TooLargeForExact {
        /// Number of vertices supplied.
        num_vertices: usize,
        /// Largest supported size.
        limit: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range for graph with {num_vertices} vertices")
            }
            CoreError::UnsuitableGraph { reason } => {
                write!(f, "graph unsuitable for this process: {reason}")
            }
            CoreError::InvalidParameters { reason } => {
                write!(f, "invalid process parameters: {reason}")
            }
            CoreError::InvalidSpec { spec, reason } => {
                write!(f, "invalid spec {spec:?}: {reason}")
            }
            CoreError::RoundBudgetExceeded { max_rounds } => {
                write!(f, "process did not complete within {max_rounds} rounds")
            }
            CoreError::TooLargeForExact { num_vertices, limit } => {
                write!(f, "exact computation supports at most {limit} vertices, got {num_vertices}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let cases: Vec<(CoreError, &str)> = vec![
            (CoreError::VertexOutOfRange { vertex: 9, num_vertices: 4 }, "vertex 9 out of range"),
            (CoreError::UnsuitableGraph { reason: "empty".into() }, "unsuitable"),
            (CoreError::InvalidParameters { reason: "k must be positive".into() }, "invalid"),
            (
                CoreError::InvalidSpec { spec: "cobra:k=".into(), reason: "bad k".into() },
                "cobra:k=",
            ),
            (CoreError::RoundBudgetExceeded { max_rounds: 10 }, "10 rounds"),
            (CoreError::TooLargeForExact { num_vertices: 99, limit: 12 }, "at most 12"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}
