//! The sharded parallel frontier engine — determinism v2.
//!
//! The sequential engines define determinism by a single global draw order: vertex `u`'s
//! pushes consume whatever words happen to come next on the shared trial stream, so any
//! change of iteration schedule changes every trajectory. That definition makes frontier
//! iteration inherently serial — the RNG stream *is* a serialization point — and it is why
//! post-saturation rounds (where |A_t| ≈ n and a round is pure sampling) gained only ~1.1×
//! from the sparse-frontier engine.
//!
//! Stream mode replaces it with **per-vertex determinism**: a trial owns one 32-byte key
//! ([`VertexStreams`]), and every entity draws from the counter-based ChaCha8 stream keyed
//! by `(key, entity, round)` ([`rand_chacha::ChaCha8Rng::stream_for`]). Draws no longer
//! have a global order at all — only per-entity orders, which are fixed by construction —
//! so frontier iteration can be sharded across threads and the trajectory is *bit-identical
//! for every thread count*, `--threads 1` included.
//!
//! # Entity-id contract
//!
//! | entity id            | owner                                                        |
//! |----------------------|--------------------------------------------------------------|
//! | `0..n`               | vertex `v` (COBRA, BIPS, PUSH, PUSH–PULL, contact); the walk |
//! |                      | keys by its *current position*                               |
//! | `0..w`               | walker index (multiple walks)                                |
//! | [`FAULT_ENTITY`]     | [`FaultedProcess`](crate::FaultedProcess) plan dynamics      |
//! | [`ADVERSARY_ENTITY`] | [`AdversarialProcess`](crate::AdversarialProcess) `observe`  |
//! | [`DEFENSE_ENTITY`]   | [`DefendedProcess`](crate::DefendedProcess) `observe`        |
//!
//! The reserved ids sit at the top of the `u64` space, unreachable by any vertex or walker
//! count, so wrapper dynamics (crash sampling, Gilbert–Elliott sojourns, policy
//! tie-breaking) stay deterministic and schedule-independent too.
//!
//! # Equivalence contract (v2)
//!
//! * **Thread-count invariance (exact):** a stream-mode trajectory is bit-identical across
//!   `threads = 1, 2, 4, 8, …` — enforced by proptests for all seven processes.
//! * **Distribution equivalence (statistical):** stream mode is *not* bit-identical to the
//!   sequential engine (the draws come from different streams by design), but cover-time
//!   distributions match — enforced by matched-quantile tests under common random numbers
//!   at the trial level.

use cobra_graph::sample::VertexStreams;
use cobra_graph::{Graph, VertexBitset, VertexId};
use rand::RngCore;
use rand_chacha::ChaCha8Rng;

use crate::fault::StepFaults;
use crate::process::SpreadingProcess;
use crate::{CoreError, Result};

/// Reserved entity id for [`FaultedProcess`](crate::FaultedProcess) plan dynamics (crash
/// resolution, repair/re-crash sweeps, Gilbert–Elliott channel advances).
pub const FAULT_ENTITY: u64 = u64::MAX;

/// Reserved entity id for [`AdversarialProcess`](crate::AdversarialProcess) policy
/// observation draws.
pub const ADVERSARY_ENTITY: u64 = u64::MAX - 1;

/// Reserved entity id for [`DefendedProcess`](crate::DefendedProcess) policy observation
/// draws.
pub const DEFENSE_ENTITY: u64 = u64::MAX - 2;

/// The per-trial stream engine handed to [`SpreadingProcess::step_streams`]: the trial's
/// [`VertexStreams`] key plus the worker-thread count for sharded frontier iteration.
#[derive(Debug, Clone)]
pub struct ParallelFrontier {
    streams: VertexStreams,
    threads: usize,
}

impl ParallelFrontier {
    /// Builds an engine from an explicit stream key.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `threads == 0`.
    pub fn new(streams: VertexStreams, threads: usize) -> Result<Self> {
        if threads == 0 {
            return Err(CoreError::InvalidParameters {
                reason: "the parallel frontier engine needs at least one thread".to_string(),
            });
        }
        Ok(ParallelFrontier { streams, threads })
    }

    /// Draws the trial key from `rng` (the per-trial RNG), so the engine is a pure function
    /// of the trial seed and the existing `(master, label, index)` seeding path carries
    /// over unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `threads == 0`.
    // cobra-lint: draws(bounded)
    pub fn from_rng(rng: &mut dyn RngCore, threads: usize) -> Result<Self> {
        Self::new(VertexStreams::from_rng(rng), threads)
    }

    /// The per-entity stream table.
    pub fn streams(&self) -> &VertexStreams {
        &self.streams
    }

    /// The worker-thread count shard fan-outs use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The independent ChaCha8 stream of `entity` at `round` — shorthand for
    /// `self.streams().stream(entity, round)`.
    #[inline]
    pub fn stream(&self, entity: u64, round: u64) -> ChaCha8Rng {
        self.streams.stream(entity, round)
    }

    /// Shards `items` across the engine's threads, collecting each shard's result in shard
    /// order: `op(shard_base, shard_items)` runs on scoped threads via the vendored rayon.
    /// Shards are contiguous, so concatenating the results preserves item order — the
    /// property every `step_streams` merge relies on for thread-count invariance.
    pub fn fan_out<T, R, F>(&self, items: &[T], op: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        rayon::par_chunks(items, self.threads, op)
    }

    /// Range analogue of [`fan_out`](Self::fan_out) for the Θ(n)-scan processes (BIPS,
    /// PUSH–PULL): shards `0..len` into contiguous sub-ranges.
    pub fn fan_out_ranges<R, F>(&self, len: usize, op: F) -> Vec<R>
    where
        R: Send,
        F: Fn(std::ops::Range<usize>) -> R + Sync,
    {
        rayon::par_ranges(len, self.threads, op)
    }
}

/// Wraps a stream-capable process so the ordinary [`SpreadingProcess`] driving loop — the
/// `Runner`, observers, the Monte-Carlo driver, `repro` — runs it in stream mode without
/// any changes: [`step_faulted`](SpreadingProcess::step_faulted) ignores the caller's RNG
/// (all randomness comes from the per-entity streams) and forwards to
/// [`step_streams`](SpreadingProcess::step_streams) with the held engine.
///
/// Construction refuses processes (or wrapper stacks) that do not support stream mode, so
/// a `ParallelProcess` can never silently fall back to sequential draw order.
pub struct ParallelProcess<'g> {
    inner: Box<dyn SpreadingProcess + Send + 'g>,
    engine: ParallelFrontier,
}

impl std::fmt::Debug for ParallelProcess<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelProcess").field("engine", &self.engine).finish_non_exhaustive()
    }
}

impl<'g> ParallelProcess<'g> {
    /// Wraps `inner` under `engine`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `inner` (or any layer of its wrapper
    /// stack) does not implement [`SpreadingProcess::step_streams`].
    pub fn new(
        inner: Box<dyn SpreadingProcess + Send + 'g>,
        engine: ParallelFrontier,
    ) -> Result<Self> {
        if !inner.supports_streams() {
            return Err(CoreError::InvalidParameters {
                reason: "process does not support per-vertex stream stepping; the parallel \
                         engine cannot drive it"
                    .to_string(),
            });
        }
        Ok(ParallelProcess { inner, engine })
    }

    /// Convenience constructor drawing the stream key from the trial RNG.
    ///
    /// # Errors
    ///
    /// As [`ParallelProcess::new`], plus `threads == 0` rejection.
    // cobra-lint: draws(bounded)
    pub fn from_rng(
        inner: Box<dyn SpreadingProcess + Send + 'g>,
        threads: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Self> {
        Self::new(inner, ParallelFrontier::from_rng(rng, threads)?)
    }

    /// The held engine.
    pub fn engine(&self) -> &ParallelFrontier {
        &self.engine
    }

    /// The wrapped process.
    pub fn inner(&self) -> &dyn SpreadingProcess {
        self.inner.as_ref()
    }
}

impl SpreadingProcess for ParallelProcess<'_> {
    // The caller's RNG is deliberately untouched: stream mode draws only from the
    // per-entity streams, which is exactly what makes the trajectory thread-invariant.
    // cobra-lint: hot
    // cobra-lint: draws(0)
    fn step_faulted(&mut self, rng: &mut dyn RngCore, faults: &StepFaults<'_>) {
        let _ = rng;
        self.inner
            .step_streams(&self.engine, faults)
            .expect("stream support was verified at construction");
    }

    // cobra-lint: par
    fn step_streams(&mut self, engine: &ParallelFrontier, faults: &StepFaults<'_>) -> Result<()> {
        self.inner.step_streams(engine, faults)
    }

    fn supports_streams(&self) -> bool {
        true
    }

    fn round(&self) -> usize {
        self.inner.round()
    }

    fn active(&self) -> &VertexBitset {
        self.inner.active()
    }

    fn num_active(&self) -> usize {
        self.inner.num_active()
    }

    fn newly_activated(&self) -> &[VertexId] {
        self.inner.newly_activated()
    }

    fn for_each_active(&self, f: &mut dyn FnMut(VertexId)) {
        self.inner.for_each_active(f);
    }

    fn for_each_token(&self, f: &mut dyn FnMut(VertexId)) {
        self.inner.for_each_token(f);
    }

    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    fn coverage(&self) -> Option<&VertexBitset> {
        self.inner.coverage()
    }

    fn adopt_state(&mut self, active: &[VertexId], coverage: Option<&VertexBitset>) -> Result<()> {
        self.inner.adopt_state(active, coverage)
    }

    fn set_branching_boost(&mut self, multiplier: u32) -> f64 {
        self.inner.set_branching_boost(multiplier)
    }

    fn reseed(&mut self, vertices: &[VertexId]) -> usize {
        self.inner.reseed(vertices)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Builds the stream-mode process for `spec` on `graph`: the full wrapper stack from
/// [`ProcessSpec::build`](crate::spec::ProcessSpec::build) (fault, adversary and defense
/// layers included — each draws its dynamics from a reserved entity stream) inside a
/// [`ParallelProcess`] whose trial key comes from `rng`.
///
/// # Errors
///
/// Propagates spec build failures, rejects `threads == 0`, and rejects specs whose stack
/// does not support stream mode (none today — all seven processes and all three wrappers
/// implement it; the error path guards future processes).
// cobra-lint: draws(bounded)
pub fn build_parallel<'g>(
    spec: &crate::spec::ProcessSpec,
    graph: &'g Graph,
    threads: usize,
    rng: &mut dyn RngCore,
) -> Result<ParallelProcess<'g>> {
    let inner = spec.build(graph)?;
    ParallelProcess::from_rng(inner, threads, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cobra::{Branching, CobraProcess};
    use crate::process::run_until_complete;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn engine_validates_thread_count() {
        assert!(ParallelFrontier::new(VertexStreams::new([0u8; 32]), 0).is_err());
        assert!(ParallelFrontier::new(VertexStreams::new([0u8; 32]), 3).is_ok());
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        assert!(ParallelFrontier::from_rng(&mut rng, 0).is_err());
    }

    #[test]
    fn engine_key_is_deterministic_in_the_trial_rng() {
        let key = |threads| {
            let mut rng = ChaCha12Rng::seed_from_u64(9);
            *ParallelFrontier::from_rng(&mut rng, threads).unwrap().streams().key()
        };
        assert_eq!(key(1), key(8), "the key must not depend on the thread count");
    }

    #[test]
    fn wrapper_refuses_stream_incapable_processes() {
        // OffsetRounds-style fakes don't implement step_streams; emulate with a minimal stub.
        struct NoStreams(VertexBitset);
        impl SpreadingProcess for NoStreams {
            fn step_faulted(&mut self, _: &mut dyn RngCore, _: &StepFaults<'_>) {}
            fn round(&self) -> usize {
                0
            }
            fn active(&self) -> &VertexBitset {
                &self.0
            }
            fn num_active(&self) -> usize {
                0
            }
            fn newly_activated(&self) -> &[VertexId] {
                &[]
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn reset(&mut self) {}
        }
        let stub: Box<dyn SpreadingProcess + Send> = Box::new(NoStreams(VertexBitset::new(4)));
        let engine = ParallelFrontier::new(VertexStreams::new([0u8; 32]), 2).unwrap();
        assert!(ParallelProcess::new(stub, engine).is_err());
    }

    #[test]
    fn parallel_cobra_runs_to_completion_and_ignores_the_caller_rng() {
        let g = generators::connected_random_regular(128, 4, &mut ChaCha12Rng::seed_from_u64(3))
            .unwrap();
        let run = |caller_seed: u64| {
            let cobra = CobraProcess::new(&g, 0, Branching::fixed(2).unwrap()).unwrap();
            let engine = ParallelFrontier::new(VertexStreams::new([11u8; 32]), 2).unwrap();
            let mut p = ParallelProcess::new(Box::new(cobra), engine).unwrap();
            let mut rng = ChaCha12Rng::seed_from_u64(caller_seed);
            run_until_complete(&mut p, &mut rng, 100_000).unwrap()
        };
        // Different caller RNGs, identical trajectories: the stream key decides everything.
        assert_eq!(run(1), run(2));
    }
}
