//! COBRA coalescing-branching random walks and the dual BIPS epidemic process.
//!
//! This crate is the primary contribution of the reproduction of *"The Coalescing-Branching
//! Random Walk on Expanders and the Dual Epidemic Process"* (Cooper, Radzik, Rivera;
//! PODC 2016). It implements, over the [`cobra_graph`] substrate:
//!
//! * [`cobra`] — the COBRA process: every active vertex pushes to `k` uniformly random
//!   neighbours (with replacement), duplicates coalesce, and a vertex is active next round iff
//!   it received a push this round. Both the paper's integer branching factor `k` and the
//!   fractional `1+ρ` branching of Theorem 3 are supported.
//! * [`bips`] — the dual **B**iased **I**nfection with **P**ersistent **S**ource process: a
//!   fixed source stays infected forever and every other vertex re-samples `k` random
//!   neighbours each round, becoming infected iff it sampled an infected neighbour.
//! * [`duality`] — exact (small graphs) and Monte-Carlo (large graphs) verification of the
//!   time-reversal duality of Theorem 4: `P̂(Hit_C(v) > t) = P(C ∩ A_t = ∅ | A_0 = {v})`.
//! * [`cover`] / [`infection`] — cover-time, hitting-time and infection-time measurement,
//!   including growth traces of the visited/infected sets.
//! * [`growth`] — empirical verification of the one-step growth bound of Lemma 1 /
//!   Corollary 1.
//! * [`theory`] — the paper's round budgets (`log n/(1-λ)³`, per-phase bounds, prior-work
//!   bounds) used for measured-vs-theory comparisons.
//! * [`baselines`] — the processes the paper positions COBRA against: the simple random walk,
//!   multiple independent random walks, PUSH, PUSH–PULL and a discrete SIS contact process.
//! * [`spec`] — [`ProcessSpec`]: a serializable, parseable value naming any of the seven
//!   processes plus its parameters, instantiated against a graph as a
//!   `Box<dyn SpreadingProcess>`.
//! * [`sim`] — the unified [`sim::Runner`] measurement loop: stop conditions (completion,
//!   round budget, target coverage) plus pluggable observers (active-count traces,
//!   first-visit/cover times, growth ratios).
//! * [`fault`] — the adversity layer: [`FaultPlan`]s describing message loss (i.i.d.
//!   `drop=f` or bursty Gilbert–Elliott `gedrop=pb,pg,fb[,fg]`), crashed vertices
//!   (permanent, or transient with `repair=r`) and edge churn, applied to any process
//!   through the [`FaultedProcess`] wrapper (spec syntax `cobra:k=2+drop=0.1+crash=5%`)
//!   and the churn-aware [`fault::run_churned`] / [`fault::run_churned_observed`] drivers.
//! * [`adversary`] — the *adaptive* adversity layer: an [`AdversaryPolicy`] observes a
//!   read-only [`ProcessView`] (frontier, delta, coverage, degrees) each round and emits
//!   that round's faults — crash the highest-degree active vertices
//!   (`adv=topdeg:budget=5%`), drop the growth front's pushes (`adv=dropfront`), sever the
//!   tracked coverage cut (`adv=partition:w=16`), or delegate to the oblivious plan
//!   bit-identically (`adv=oblivious`).
//! * [`defense`] — the recovery mirror: a [`DefensePolicy`] observes the same read-only
//!   view and spends recovery levers — AIMD-boost `k` on coverage stall
//!   (`def=boostk:trigger=stall,w=8,cap=4`), re-seed the dead frontier from the coverage
//!   boundary (`def=reseed:m=1%,cooldown=16`), servo `k` toward the growth-ratio closed
//!   form (`def=adaptivek:target=growth-ratio`), or do nothing bit-identically
//!   (`def=passive`).
//! * [`reference`](mod@reference) — the retained dense-scan engines, used as the executable specification
//!   the frontier engines are property-tested against and as the baseline `repro bench`
//!   measures speedups over.
//!
//! # The sparse-frontier engine
//!
//! The paper's regime of interest starts from a *single* active vertex and runs
//! `Θ(log n)`–`Θ(n log n)` rounds, so per-round costs dominate everything. All processes and
//! observers therefore follow a shared cost model:
//!
//! * a process `step` iterates an **explicit frontier** (the current active set as a vertex
//!   list, ascending) and touches scratch state through a word-level
//!   [`VertexBitset`](cobra_graph::VertexBitset) — `O(|A_t| · k + n/64)` per round for the
//!   push-style processes (COBRA, PUSH, contact, walks) instead of an `O(n)` dense scan.
//!   Scratch sets are erased through **dirty lists** (`clear_list`), never `fill(false)`.
//!   BIPS and the pull half of PUSH–PULL are inherently `Θ(n)` per round (every vertex
//!   re-samples — that *is* the protocol), but share the same bookkeeping;
//! * neighbour sampling is one `next_u64` per draw via the Lemire-style
//!   [`sample_neighbor`](cobra_graph::Graph::sample_neighbor) /
//!   [`sample::sample_slice`](cobra_graph::sample::sample_slice) reduction;
//! * observers consume the per-round **delta**
//!   [`newly_activated`](process::SpreadingProcess::newly_activated) in `O(|delta|)`, plus
//!   the `O(1)` [`num_active`](process::SpreadingProcess::num_active) counter.
//!
//! Frontier iteration deliberately preserves the dense engines' ascending vertex order, so a
//! frontier process driven by a seeded RNG reproduces the corresponding [`reference`](mod@reference) engine
//! bit for bit — a property the test suite enforces for all seven processes.
//!
//! # Quick start
//!
//! Every process is a value: name it in a [`ProcessSpec`] (or parse one from a string such
//! as `"cobra:k=2"`), instantiate it against any graph, and drive it through the shared
//! [`sim::Runner`]:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cobra_core::sim::Runner;
//! use cobra_core::spec::ProcessSpec;
//! use cobra_graph::generators;
//! use rand::SeedableRng;
//!
//! let graph = generators::hypercube(7)?; // 128 vertices
//! let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
//! let spec: ProcessSpec = "cobra:k=2".parse()?;
//! let outcome = Runner::new(10_000).run_spec(&spec, &graph, &mut rng)?;
//! assert!(outcome.completed() && outcome.rounds < 100);
//! # Ok(())
//! # }
//! ```
//!
//! Statically-typed construction still works, and [`process::run_until_complete`] drives any
//! `&mut dyn SpreadingProcess`:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cobra_core::cobra::{Branching, CobraProcess};
//! use cobra_core::process::{run_until_complete, SpreadingProcess};
//! use cobra_graph::generators;
//! use rand::SeedableRng;
//!
//! let graph = generators::hypercube(7)?;
//! let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
//! let mut process = CobraProcess::new(&graph, 0, Branching::fixed(2)?)?;
//! let rounds = run_until_complete(&mut process, &mut rng, 10_000)
//!     .expect("an expander is covered quickly");
//! assert!(rounds < 100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod baselines;
pub mod bips;
pub mod cobra;
pub mod counting;
pub mod cover;
pub mod defense;
pub mod duality;
pub mod fault;
pub mod growth;
pub mod infection;
pub mod parallel;
pub mod process;
pub mod reference;
pub mod sim;
pub mod spec;
pub mod theory;

mod error;

pub use adversary::{
    AdversarialProcess, AdversaryBudget, AdversaryPolicy, AdversarySpec, ProcessView,
};
pub use bips::BipsProcess;
pub use cobra::{Branching, CobraProcess};
pub use counting::CountingRng;
pub use defense::{DefendedProcess, DefenseActions, DefensePolicy, DefenseSpec, DefenseStats};
pub use error::CoreError;
pub use fault::{CrashSpec, DropModel, FaultPlan, FaultedProcess, StepFaults};
pub use parallel::{ParallelFrontier, ParallelProcess};
pub use process::SpreadingProcess;
pub use sim::{RunOutcome, Runner};
pub use spec::ProcessSpec;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
