//! The adaptive-adversary engine: state-aware fault policies.
//!
//! The oblivious [`fault`](crate::fault) layer decides its drops and crashes without ever
//! looking at the process — which is exactly the regime the paper's `O(log n/(1−λ)³)`
//! analysis tolerates. This module closes the gap from the other side: an
//! [`AdversaryPolicy`] observes a read-only [`ProcessView`] (frontier, per-round delta,
//! coverage, graph degrees) *before every round* and emits that round's
//! [`StepFaults`] — crash the frontier, drop the pushes that matter, cut the graph where
//! it is thinnest. The sparse-frontier engine makes the observation cheap: everything a
//! policy needs is exposed at `O(|frontier|)` (or `O(|delta|·deg)`) per round.
//!
//! # Policies
//!
//! | policy | spec clause | behaviour |
//! |--------|-------------|-----------|
//! | oblivious | `adv=oblivious` | delegates to the plan's own `drop=`/`gedrop=`/`crash=`/`repair=` clauses through the shared plan-dynamics machinery of [`fault`](crate::fault) — **bit-identical** to the bare fault path (property-tested) |
//! | crash-top-degree | `adv=topdeg:budget=5%` (or `budget=12`, optional `rate=R`) | each round, permanently crashes up to `rate` (default 1) of the highest-degree *currently active* vertices, until a total budget (fraction or count of `V`) is spent; the start vertex is protected |
//! | drop-frontier | `adv=dropfront[:f=0.8]` | drops (with probability `f`, default 1) only the transmissions *leaving* the vertices that became active in the previous round — the growth front |
//! | partition | `adv=partition:w=16` | tracks the ever-active-vs-rest cut incrementally as a trigger; once the tracked side holds half the graph, each new sparsity minimum severs the *globally sparsest* cut (found once by the spectral sweep of [`cobra_spectral::conductance`]) for `w` rounds |
//!
//! All policies are deterministic functions of the observed state and the seeded RNG
//! stream (`oblivious` consumes randomness exactly as the plan it delegates to would;
//! `partition` draws a bounded number of words once, for the power iteration's random
//! start vector), so adversarial runs stay bit-reproducible under seeded RNGs.
//!
//! # Spec syntax
//!
//! Adversaries ride on the normal `+` fault-clause grammar of
//! [`ProcessSpec`](crate::spec::ProcessSpec#impl-FromStr-for-ProcessSpec) and compose with oblivious clauses — the
//! documented examples below are executable and round-trip through the parser:
//!
//! ```
//! use cobra_core::spec::ProcessSpec;
//!
//! for text in [
//!     "cobra:k=2+adv=topdeg:budget=5%",
//!     "cobra:k=2+adv=topdeg:budget=12,rate=2",
//!     "push+adv=dropfront",
//!     "push+adv=dropfront:f=0.75",
//!     "cobra:k=2+adv=partition:w=16",
//!     "cobra:k=2+drop=0.1+crash=5%+adv=oblivious",
//!     "bips:k=2+drop=0.1+adv=topdeg:budget=5%",
//! ] {
//!     let spec: ProcessSpec = text.parse().expect(text);
//!     assert_eq!(spec.to_string(), text, "Display must round-trip the documented syntax");
//!     assert_eq!(spec.to_string().parse::<ProcessSpec>().unwrap(), spec);
//! }
//!
//! // Clause order is free on input; Display canonicalizes (loss, crash, repair, churn,
//! // adv, def).
//! let spec: ProcessSpec = "cobra:k=2+adv=oblivious+drop=0.1".parse().unwrap();
//! assert_eq!(spec.to_string(), "cobra:k=2+drop=0.1+adv=oblivious");
//! ```
//!
//! # Architecture
//!
//! [`ProcessSpec::build`](crate::spec::ProcessSpec::build) routes plans carrying an `adv=`
//! clause to [`build_adversarial`]: the base process (wrapped in a
//! [`FaultedProcess`] when oblivious clauses remain) is
//! enclosed in an [`AdversarialProcess`], which calls
//! [`AdversaryPolicy::observe`] before each step and feeds the policy's
//! [`faults`](AdversaryPolicy::faults) into
//! [`step_faulted`](SpreadingProcess::step_faulted). The wrapper is an ordinary
//! [`SpreadingProcess`], so the `Runner`, every observer, churn segmentation
//! ([`run_churned_observed`](crate::fault::run_churned_observed) builds a fresh wrapper —
//! and thus a fresh policy with a fresh budget — per epoch, mirroring the per-epoch
//! re-draw of sampled crash sets) and the Monte-Carlo drivers handle adversarial runs
//! unchanged.

use std::fmt;
use std::str::FromStr;

use cobra_graph::{Graph, VertexBitset, VertexId};
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::fault::{FaultPlan, FaultedProcess, PlanDynamics, StepFaults};
use crate::process::SpreadingProcess;
use crate::spec::ProcessSpec;
use crate::{CoreError, Result};

/// A read-only window onto a running process and its graph — everything an adversary may
/// observe, nothing it may touch.
///
/// The accessors mirror the cheap surface of [`SpreadingProcess`]: the explicit frontier
/// ([`for_each_active`](ProcessView::for_each_active), `O(|active|)`), the per-round delta
/// ([`newly_activated`](ProcessView::newly_activated), `O(|delta|)`), the `O(1)` counters,
/// the monotone coverage set and the graph's degree structure.
#[derive(Clone, Copy)]
pub struct ProcessView<'a> {
    process: &'a dyn SpreadingProcess,
    graph: &'a Graph,
}

impl fmt::Debug for ProcessView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessView")
            .field("round", &self.process.round())
            .field("num_active", &self.process.num_active())
            .field("num_vertices", &self.process.num_vertices())
            .finish_non_exhaustive()
    }
}

impl<'a> ProcessView<'a> {
    /// A view over `process` running on `graph`.
    pub fn new(process: &'a dyn SpreadingProcess, graph: &'a Graph) -> Self {
        ProcessView { process, graph }
    }

    /// The underlying graph (read-only).
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Rounds executed so far.
    pub fn round(&self) -> usize {
        self.process.round()
    }

    /// Number of vertices of the instance.
    pub fn num_vertices(&self) -> usize {
        self.process.num_vertices()
    }

    /// Number of currently active vertices (`O(1)`).
    pub fn num_active(&self) -> usize {
        self.process.num_active()
    }

    /// The vertices that became active in the most recent transition (`O(|delta|)`).
    pub fn newly_activated(&self) -> &'a [VertexId] {
        self.process.newly_activated()
    }

    /// The monotone coverage set, for processes that track one distinct from the active
    /// set (see [`SpreadingProcess::coverage`]).
    pub fn coverage(&self) -> Option<&'a VertexBitset> {
        self.process.coverage()
    }

    /// Whether the observed process has reached its completion condition.
    pub fn is_complete(&self) -> bool {
        self.process.is_complete()
    }

    /// Calls `f` for every currently active vertex (`O(|active|)` for frontier processes).
    pub fn for_each_active(&self, f: &mut dyn FnMut(VertexId)) {
        self.process.for_each_active(f);
    }

    /// Calls `f` once per migratable token (one entry per walker for multiwalk).
    pub fn for_each_token(&self, f: &mut dyn FnMut(VertexId)) {
        self.process.for_each_token(f);
    }

    /// Degree of vertex `v` in the underlying graph.
    pub fn degree(&self, v: VertexId) -> usize {
        self.graph.degree(v)
    }
}

/// A state-aware fault policy: observes the process before each round and emits the
/// round's faults.
///
/// The two-phase contract ([`observe`](AdversaryPolicy::observe) mutates the policy,
/// [`faults`](AdversaryPolicy::faults) borrows the result) lets policies own their fault
/// bitsets without per-round allocation. Policies must be deterministic given the observed
/// state and the RNG stream, and must not draw from the RNG unless their semantics require
/// randomness — that is what keeps zero-strength policies (and `adv=oblivious` over a
/// benign plan) bit-identical to the bare process.
pub trait AdversaryPolicy: fmt::Debug + Send {
    /// Observes the pre-step state of round `view.round()` and updates the policy's
    /// internal fault sets for the upcoming step.
    fn observe(&mut self, view: &ProcessView<'_>, rng: &mut dyn RngCore);

    /// The faults to apply in the upcoming step, borrowed from the policy's state.
    fn faults(&self) -> StepFaults<'_>;

    /// Restores the pre-trial state (budgets refill, tracked sets clear) so one policy
    /// allocation can serve several Monte-Carlo trials.
    fn reset(&mut self);
}

/// How much of the vertex set an adversary may spend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AdversaryBudget {
    /// A fraction of the vertex set (spec syntax `budget=5%`), in `[0, 100]`.
    Percent {
        /// Percentage of vertices, in `[0, 100]`.
        percent: f64,
    },
    /// An absolute vertex count (spec syntax `budget=12`).
    Count {
        /// Number of vertices.
        count: usize,
    },
}

impl AdversaryBudget {
    /// The number of vertices the budget buys on an `n`-vertex instance (never more than
    /// the `n − 1` non-protected vertices).
    pub fn resolve(&self, n: usize) -> usize {
        let raw = match self {
            AdversaryBudget::Percent { percent } => ((percent / 100.0) * n as f64).round() as usize,
            AdversaryBudget::Count { count } => *count,
        };
        raw.min(n.saturating_sub(1))
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if let AdversaryBudget::Percent { percent } = self {
            if !percent.is_finite() || !(0.0..=100.0).contains(percent) {
                return Err(CoreError::InvalidParameters {
                    reason: format!("adversary budget {percent}% must be in [0, 100]"),
                });
            }
        }
        Ok(())
    }

    pub(crate) fn parse(value: &str) -> Result<Self> {
        if let Some(percent) = value.strip_suffix('%') {
            let percent = percent.trim().parse().map_err(|_| CoreError::InvalidParameters {
                reason: format!("invalid adversary budget percentage {value:?}"),
            })?;
            Ok(AdversaryBudget::Percent { percent })
        } else {
            let count = value.trim().parse().map_err(|_| CoreError::InvalidParameters {
                reason: format!("invalid adversary budget count {value:?}"),
            })?;
            Ok(AdversaryBudget::Count { count })
        }
    }
}

impl fmt::Display for AdversaryBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryBudget::Percent { percent } => write!(f, "{percent}%"),
            AdversaryBudget::Count { count } => write!(f, "{count}"),
        }
    }
}

/// A serializable description of an adaptive adversary, attached to a
/// [`FaultPlan`] with an `adv=` clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AdversarySpec {
    /// Route the plan's own oblivious clauses through the adversary engine
    /// (`adv=oblivious`) — bit-identical to the plain fault path.
    Oblivious,
    /// Crash the highest-degree active vertices, up to `rate` per round, until `budget`
    /// vertices are down (`adv=topdeg:budget=5%[,rate=R]`). Crashes are permanent and the
    /// start vertex is protected.
    CrashTopDegree {
        /// Total crash budget over the whole run.
        budget: AdversaryBudget,
        /// Maximum crashes per round (default 1).
        rate: usize,
    },
    /// Drop transmissions leaving the previous round's newly activated vertices with
    /// probability `f` (`adv=dropfront[:f=0.8]`, default `f = 1`).
    DropFrontier {
        /// Per-transmission loss probability on the growth front, in `[0, 1]`.
        f: f64,
    },
    /// Sever the tracked ever-active-vs-rest cut for `window` rounds whenever its sparsity
    /// sets a new minimum, once the tracked side holds half the graph
    /// (`adv=partition:w=16`).
    Partition {
        /// Rounds each severance lasts.
        window: usize,
    },
}

impl AdversarySpec {
    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] for a budget percentage outside
    /// `[0, 100]`, a per-round rate of 0, a frontier drop probability outside `[0, 1]` or
    /// a partition window of 0.
    pub fn validate(&self) -> Result<()> {
        match self {
            AdversarySpec::Oblivious => Ok(()),
            AdversarySpec::CrashTopDegree { budget, rate } => {
                budget.validate()?;
                if *rate == 0 {
                    return Err(CoreError::InvalidParameters {
                        reason: "adv=topdeg rate must be at least 1 crash per round".to_string(),
                    });
                }
                Ok(())
            }
            AdversarySpec::DropFrontier { f } => {
                if !f.is_finite() || !(0.0..=1.0).contains(f) {
                    return Err(CoreError::InvalidParameters {
                        reason: format!("adv=dropfront probability f = {f} must be in [0, 1]"),
                    });
                }
                Ok(())
            }
            AdversarySpec::Partition { window } => {
                if *window == 0 {
                    return Err(CoreError::InvalidParameters {
                        reason: "adv=partition window must be at least 1 round".to_string(),
                    });
                }
                Ok(())
            }
        }
    }

    /// Builds the runtime policy for a process whose protected start vertex is `protect`.
    ///
    /// For [`AdversarySpec::Oblivious`], `residual` (the plan's non-adversary clauses) is
    /// consumed by the policy; the other policies ignore it — [`build_adversarial`] wraps
    /// those around a [`FaultedProcess`] instead.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation.
    pub fn build_policy(
        &self,
        residual: &FaultPlan,
        protect: VertexId,
        num_vertices: usize,
    ) -> Result<Box<dyn AdversaryPolicy>> {
        self.validate()?;
        Ok(match self {
            AdversarySpec::Oblivious => Box::new(ObliviousPolicy {
                dynamics: PlanDynamics::new(residual, protect, num_vertices)?,
                drop: 0.0,
            }),
            AdversarySpec::CrashTopDegree { budget, rate } => Box::new(CrashTopDegreePolicy {
                budget: budget.clone(),
                rate: *rate,
                protect,
                remaining: None,
                crashed: None,
                candidates: Vec::new(),
            }),
            AdversarySpec::DropFrontier { f } => {
                Box::new(DropFrontierPolicy { f: *f, front: None, members: Vec::new() })
            }
            AdversarySpec::Partition { window } => Box::new(PartitionPolicy {
                window: *window,
                covered: None,
                covered_count: 0,
                crossing: 0,
                best: f64::INFINITY,
                frozen: None,
                severing_left: 0,
            }),
        })
    }
}

/// Emits the clause-value form (`oblivious`, `topdeg:budget=5%`, `dropfront:f=0.75`,
/// `partition:w=16`) that [`FromStr`] parses back; defaulted parameters are omitted.
impl fmt::Display for AdversarySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversarySpec::Oblivious => write!(f, "oblivious"),
            AdversarySpec::CrashTopDegree { budget, rate } => {
                write!(f, "topdeg:budget={budget}")?;
                if *rate != 1 {
                    write!(f, ",rate={rate}")?;
                }
                Ok(())
            }
            AdversarySpec::DropFrontier { f: prob } => {
                if *prob == 1.0 {
                    write!(f, "dropfront")
                } else {
                    write!(f, "dropfront:f={prob}")
                }
            }
            AdversarySpec::Partition { window } => write!(f, "partition:w={window}"),
        }
    }
}

impl FromStr for AdversarySpec {
    type Err = CoreError;

    fn from_str(text: &str) -> Result<Self> {
        let invalid = |reason: String| CoreError::InvalidParameters { reason };
        let (name, rest) = match text.split_once(':') {
            Some((name, rest)) => (name.trim(), rest),
            None => (text.trim(), ""),
        };
        // The policy arguments are a comma-separated key=value list.
        let mut args: Vec<(String, String)> = Vec::new();
        for token in rest.split(',').filter(|t| !t.is_empty()) {
            let (key, value) = token.split_once('=').ok_or_else(|| {
                invalid(format!("adversary argument {token:?} must be key=value"))
            })?;
            args.push((key.trim().to_string(), value.trim().to_string()));
        }
        let mut take = |key: &str| -> Option<String> {
            let index = args.iter().position(|(k, _)| k == key)?;
            Some(args.remove(index).1)
        };
        let spec = match name.to_ascii_lowercase().as_str() {
            "oblivious" => AdversarySpec::Oblivious,
            "topdeg" | "crash-top-degree" => {
                let budget = take("budget").ok_or_else(|| {
                    invalid("adv=topdeg requires budget=<percent%|count>".to_string())
                })?;
                let rate = match take("rate") {
                    None => 1,
                    Some(raw) => raw.parse().map_err(|_| {
                        invalid(format!("invalid adv=topdeg rate {raw:?} (want a count ≥ 1)"))
                    })?,
                };
                AdversarySpec::CrashTopDegree { budget: AdversaryBudget::parse(&budget)?, rate }
            }
            "dropfront" | "drop-frontier" => {
                let f = match take("f") {
                    None => 1.0,
                    Some(raw) => raw.parse().map_err(|_| {
                        invalid(format!("invalid adv=dropfront probability {raw:?}"))
                    })?,
                };
                AdversarySpec::DropFrontier { f }
            }
            "partition" => {
                let window = take("w").or_else(|| take("window")).ok_or_else(|| {
                    invalid("adv=partition requires w=<rounds per severance>".to_string())
                })?;
                AdversarySpec::Partition {
                    window: window
                        .parse()
                        .map_err(|_| invalid(format!("invalid adv=partition window {window:?}")))?,
                }
            }
            other => {
                return Err(invalid(format!(
                    "unknown adversary policy `{other}` (expected oblivious, topdeg, \
                     dropfront or partition)"
                )))
            }
        };
        if let Some((key, _)) = args.first() {
            return Err(invalid(format!("unknown adversary argument `{key}` in {text:?}")));
        }
        spec.validate()?;
        Ok(spec)
    }
}

/// The `adv=oblivious` policy: the plan's own clauses, advanced through the same
/// [`PlanDynamics`] the [`FaultedProcess`] wrapper uses — identical RNG draws, identical
/// crash evolution, identical channel sojourns.
#[derive(Debug)]
struct ObliviousPolicy {
    dynamics: PlanDynamics,
    /// This round's drop probability, computed by [`AdversaryPolicy::observe`].
    drop: f64,
}

impl AdversaryPolicy for ObliviousPolicy {
    // cobra-lint: hot
    // cobra-lint: draws(bounded)
    fn observe(&mut self, _view: &ProcessView<'_>, rng: &mut dyn RngCore) {
        self.drop = self.dynamics.begin_round(rng, None);
    }

    fn faults(&self) -> StepFaults<'_> {
        StepFaults::new(self.drop, self.dynamics.crashed())
    }

    fn reset(&mut self) {
        self.drop = 0.0;
        self.dynamics.reset();
    }
}

/// The `adv=topdeg` policy: crash the highest-degree active vertices, a few per round,
/// until the budget is spent.
#[derive(Debug)]
struct CrashTopDegreePolicy {
    budget: AdversaryBudget,
    rate: usize,
    protect: VertexId,
    /// Crashes left; resolved from the budget at the first observation.
    remaining: Option<usize>,
    crashed: Option<VertexBitset>,
    /// Scratch: the crashable members of the current frontier.
    candidates: Vec<VertexId>,
}

impl AdversaryPolicy for CrashTopDegreePolicy {
    // cobra-lint: hot
    // cobra-lint: draws(0)
    fn observe(&mut self, view: &ProcessView<'_>, _rng: &mut dyn RngCore) {
        let n = view.num_vertices();
        let remaining = self.remaining.get_or_insert_with(|| self.budget.resolve(n));
        if *remaining == 0 {
            return;
        }
        let crashed = self.crashed.get_or_insert_with(|| VertexBitset::new(n));
        let (candidates, protect) = (&mut self.candidates, self.protect);
        candidates.clear();
        view.for_each_active(&mut |v| {
            if v != protect && !crashed.contains(v) {
                candidates.push(v);
            }
        });
        let strikes = self.rate.min(*remaining).min(candidates.len());
        if strikes == 0 {
            return;
        }
        // Highest degree first; ties break on the lower vertex id. The comparator is a
        // total order (ids are unique), so a partial selection puts exactly the
        // top-`strikes` set in the prefix — O(|frontier|) per round instead of a full
        // sort, and the crashed set (all that matters) stays deterministic.
        if strikes < candidates.len() {
            candidates.select_nth_unstable_by(strikes - 1, |&a, &b| {
                view.degree(b).cmp(&view.degree(a)).then_with(|| a.cmp(&b))
            });
        }
        for &v in candidates.iter().take(strikes) {
            crashed.insert(v);
        }
        *remaining -= strikes;
    }

    fn faults(&self) -> StepFaults<'_> {
        StepFaults::new(0.0, self.crashed.as_ref())
    }

    fn reset(&mut self) {
        self.remaining = None;
        self.crashed = None;
        self.candidates.clear();
    }
}

/// The `adv=dropfront` policy: a targeted drop on the previous round's newly activated
/// vertices — exactly the growth front the paper's expansion lemmas rely on.
#[derive(Debug)]
struct DropFrontierPolicy {
    f: f64,
    front: Option<VertexBitset>,
    /// The bitset's member list, for `O(|front|)` dirty clearing.
    members: Vec<VertexId>,
}

impl AdversaryPolicy for DropFrontierPolicy {
    // cobra-lint: hot
    // cobra-lint: draws(0)
    fn observe(&mut self, view: &ProcessView<'_>, _rng: &mut dyn RngCore) {
        let front = self.front.get_or_insert_with(|| VertexBitset::new(view.num_vertices()));
        front.clear_list(&self.members);
        self.members.clear();
        for &v in view.newly_activated() {
            if front.insert(v) {
                self.members.push(v);
            }
        }
    }

    fn faults(&self) -> StepFaults<'_> {
        StepFaults::NONE.with_targeted(self.f, self.front.as_ref())
    }

    fn reset(&mut self) {
        self.front = None;
        self.members.clear();
    }
}

/// The `adv=partition` policy: severs the *globally sparsest* cut the spectral sweep
/// finds, for a window of rounds at each new sparsity minimum of the incrementally tracked
/// ever-active-vs-rest frontier cut.
///
/// The trigger machinery is unchanged from the frontier-cut version — the policy still
/// maintains the ever-active side and its crossing-edge count in `O(|delta|·deg)` per
/// round, arms once that side holds half the graph, and strikes at each new sparsity
/// minimum. What changed is the *severed set*: on the first strike the policy runs
/// [`spectral_sweep_conductance`](cobra_spectral::conductance::spectral_sweep_conductance)
/// once and freezes the sweep side — by Cheeger's inequality within a square of the
/// sparsest cut in the whole graph, and on structured families (a torus, say) strictly
/// sparser than whatever shape the frontier happened to have. A sparser cut means fewer
/// severed edges buy the same outage, so the upgrade only strengthens the adversary per
/// unit of disruption.
///
/// The arming threshold keeps the policy from degenerately severing the start vertex away
/// at round 0 (which would merely kill, not measure); severing at half coverage instead
/// stalls the uncovered part of the far side while the process keeps circulating on the
/// near side — an outage whose cost in rounds E10 measures.
#[derive(Debug)]
struct PartitionPolicy {
    window: usize,
    covered: Option<VertexBitset>,
    covered_count: usize,
    /// Edges between the tracked side and its complement, maintained incrementally.
    crossing: usize,
    /// Sparsity of the sparsest frontier cut seen so far (`∞` before the first strike).
    best: f64,
    /// Frozen spectral sweep side, computed once on the first strike.
    frozen: Option<VertexBitset>,
    /// Rounds of severance left, including the upcoming one.
    severing_left: usize,
}

impl AdversaryPolicy for PartitionPolicy {
    // cobra-lint: hot
    // cobra-lint: draws(bounded)
    fn observe(&mut self, view: &ProcessView<'_>, rng: &mut dyn RngCore) {
        let n = view.num_vertices();
        let covered = self.covered.get_or_insert_with(|| VertexBitset::new(n));
        // Incremental cut maintenance: when v joins the side, its edges to members stop
        // crossing and its edges to non-members start crossing. Re-activations are
        // filtered by the insert guard.
        for &v in view.newly_activated() {
            if covered.insert(v) {
                self.covered_count += 1;
                for &w in view.graph().neighbors(v) {
                    if covered.contains(w) {
                        self.crossing -= 1;
                    } else {
                        self.crossing += 1;
                    }
                }
            }
        }
        if self.severing_left > 0 {
            self.severing_left -= 1;
            return;
        }
        let small = self.covered_count.min(n - self.covered_count);
        let armed = 2 * self.covered_count >= n;
        if armed && small > 0 && self.crossing > 0 {
            let sparsity = self.crossing as f64 / small as f64;
            if sparsity < self.best {
                self.best = sparsity;
                if self.frozen.is_none() {
                    // One-time spectral sweep (the only RNG use: the power iteration's
                    // random start vector); the frontier cut is the fallback if the
                    // solver cannot run (it needs >= 2 vertices and >= 1 edge).
                    let side = cobra_spectral::conductance::spectral_sweep_conductance(
                        view.graph(),
                        &mut &mut *rng,
                    )
                    .map(|cut| cut.side)
                    .ok();
                    self.frozen = Some(match side {
                        Some(side) => {
                            let mut bits = VertexBitset::new(n);
                            for v in side {
                                bits.insert(v);
                            }
                            bits
                        }
                        None => covered.clone(),
                    });
                }
                self.severing_left = self.window;
            }
        }
    }

    fn faults(&self) -> StepFaults<'_> {
        let side = if self.severing_left > 0 { self.frozen.as_ref() } else { None };
        StepFaults::NONE.with_partition(side)
    }

    fn reset(&mut self) {
        self.covered = None;
        self.covered_count = 0;
        self.crossing = 0;
        self.best = f64::INFINITY;
        self.frozen = None;
        self.severing_left = 0;
    }
}

/// Wraps any boxed process so that an [`AdversaryPolicy`] observes it before every round
/// and injects that round's faults.
///
/// The wrapper is itself a [`SpreadingProcess`]; outer faults passed to its own
/// [`step_faulted`](SpreadingProcess::step_faulted) (nested wrappers) are composed with
/// the policy's — drops multiply, crash sets union, and for the shapes that cannot be
/// merged (two targeted sets, two partitions) the policy's own faults win.
pub struct AdversarialProcess<'g> {
    inner: Box<dyn SpreadingProcess + Send + 'g>,
    graph: &'g Graph,
    policy: Box<dyn AdversaryPolicy>,
    /// Scratch for unioning the policy's crash set with an outer caller's.
    merged_crashes: VertexBitset,
    merged_dirty: Vec<VertexId>,
}

impl fmt::Debug for AdversarialProcess<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdversarialProcess").field("policy", &self.policy).finish_non_exhaustive()
    }
}

impl<'g> AdversarialProcess<'g> {
    /// Wraps `inner` (which must run on `graph`) under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `graph` is not the instance `inner`
    /// runs on (the policy would observe degrees of the wrong graph).
    pub fn new(
        inner: Box<dyn SpreadingProcess + Send + 'g>,
        graph: &'g Graph,
        policy: Box<dyn AdversaryPolicy>,
    ) -> Result<Self> {
        let n = graph.num_vertices();
        if inner.num_vertices() != n {
            return Err(CoreError::InvalidParameters {
                reason: format!(
                    "adversary graph has {n} vertices but the process runs on {}",
                    inner.num_vertices()
                ),
            });
        }
        Ok(AdversarialProcess {
            inner,
            graph,
            policy,
            merged_crashes: VertexBitset::new(n),
            merged_dirty: Vec::new(),
        })
    }

    /// The active policy.
    pub fn policy(&self) -> &dyn AdversaryPolicy {
        self.policy.as_ref()
    }

    /// The wrapped process.
    pub fn inner(&self) -> &dyn SpreadingProcess {
        self.inner.as_ref()
    }
}

impl SpreadingProcess for AdversarialProcess<'_> {
    // cobra-lint: hot
    // cobra-lint: draws(bounded)
    fn step_faulted(&mut self, rng: &mut dyn RngCore, outer: &StepFaults<'_>) {
        self.policy.observe(&ProcessView::new(self.inner.as_ref(), self.graph), rng);
        let own = self.policy.faults();
        if outer.is_benign() {
            self.inner.step_faulted(rng, &own);
            return;
        }
        let drop = 1.0 - (1.0 - own.drop_probability()) * (1.0 - outer.drop_probability());
        let (scratch, dirty) = (&mut self.merged_crashes, &mut self.merged_dirty);
        let crashed = match (own.crashed_set(), outer.crashed_set()) {
            (None, None) => None,
            (Some(set), None) | (None, Some(set)) => Some(set),
            (Some(a), Some(b)) => {
                scratch.clear_list(dirty);
                dirty.clear();
                for set in [a, b] {
                    set.for_each(&mut |v| {
                        if scratch.insert(v) {
                            dirty.push(v);
                        }
                    });
                }
                Some(&*scratch)
            }
        };
        let (targeted_drop, targeted) = if own.targeted_set().is_some() {
            (own.targeted_drop_probability(), own.targeted_set())
        } else {
            (outer.targeted_drop_probability(), outer.targeted_set())
        };
        let severed = own.severed_side().or(outer.severed_side());
        let faults = StepFaults::new(drop, crashed)
            .with_targeted(targeted_drop, targeted)
            .with_partition(severed);
        self.inner.step_faulted(rng, &faults);
    }

    // Stream mode: the policy's observation draws (crash-set sampling, the one-time
    // spectral sweep) come from the reserved ADVERSARY_ENTITY stream at the current round;
    // the fault-composition logic is the same as step_faulted's.
    // cobra-lint: par
    // cobra-lint: draws(bounded)
    fn step_streams(
        &mut self,
        engine: &crate::parallel::ParallelFrontier,
        outer: &StepFaults<'_>,
    ) -> Result<()> {
        let mut rng = engine.stream(crate::parallel::ADVERSARY_ENTITY, self.inner.round() as u64);
        self.policy.observe(&ProcessView::new(self.inner.as_ref(), self.graph), &mut rng);
        let own = self.policy.faults();
        if outer.is_benign() {
            return self.inner.step_streams(engine, &own);
        }
        let drop = 1.0 - (1.0 - own.drop_probability()) * (1.0 - outer.drop_probability());
        let (scratch, dirty) = (&mut self.merged_crashes, &mut self.merged_dirty);
        let crashed = match (own.crashed_set(), outer.crashed_set()) {
            (None, None) => None,
            (Some(set), None) | (None, Some(set)) => Some(set),
            (Some(a), Some(b)) => {
                scratch.clear_list(dirty);
                dirty.clear();
                for set in [a, b] {
                    set.for_each(&mut |v| {
                        if scratch.insert(v) {
                            dirty.push(v);
                        }
                    });
                }
                Some(&*scratch)
            }
        };
        let (targeted_drop, targeted) = if own.targeted_set().is_some() {
            (own.targeted_drop_probability(), own.targeted_set())
        } else {
            (outer.targeted_drop_probability(), outer.targeted_set())
        };
        let severed = own.severed_side().or(outer.severed_side());
        let faults = StepFaults::new(drop, crashed)
            .with_targeted(targeted_drop, targeted)
            .with_partition(severed);
        self.inner.step_streams(engine, &faults)
    }

    fn supports_streams(&self) -> bool {
        self.inner.supports_streams()
    }

    fn round(&self) -> usize {
        self.inner.round()
    }

    fn active(&self) -> &VertexBitset {
        self.inner.active()
    }

    fn num_active(&self) -> usize {
        self.inner.num_active()
    }

    fn newly_activated(&self) -> &[VertexId] {
        self.inner.newly_activated()
    }

    fn for_each_active(&self, f: &mut dyn FnMut(VertexId)) {
        self.inner.for_each_active(f);
    }

    fn for_each_token(&self, f: &mut dyn FnMut(VertexId)) {
        self.inner.for_each_token(f);
    }

    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    fn coverage(&self) -> Option<&VertexBitset> {
        self.inner.coverage()
    }

    fn adopt_state(&mut self, active: &[VertexId], coverage: Option<&VertexBitset>) -> Result<()> {
        self.inner.adopt_state(active, coverage)
    }

    fn set_branching_boost(&mut self, multiplier: u32) -> f64 {
        self.inner.set_branching_boost(multiplier)
    }

    fn reseed(&mut self, vertices: &[VertexId]) -> usize {
        // Vertices the policy has crashed cannot be revived — filter the defense's
        // targets through the current crash set instead of letting dead vertices
        // silently absorb the recovery spend.
        let own = self.policy.faults();
        crate::fault::reseed_live(self.inner.as_mut(), own.crashed_set(), vertices)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.policy.reset();
        self.merged_crashes.clear_list(&self.merged_dirty);
        self.merged_dirty.clear();
    }
}

/// Builds the adversarial process a plan with an `adv=` clause describes: the inner spec
/// (wrapped in a [`FaultedProcess`] when oblivious clauses remain and the policy is not
/// `oblivious` itself) enclosed in an [`AdversarialProcess`].
///
/// This is the routing target of [`ProcessSpec::build`](crate::spec::ProcessSpec::build);
/// call it directly only when assembling wrappers by hand.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParameters`] for a plan without an `adv=` clause or with a
/// `churn=` clause (churned specs run through
/// [`fault::run_churned`](crate::fault::run_churned), which strips churn per segment), and
/// propagates process-construction and policy validation failures.
pub fn build_adversarial<'g>(
    inner: &ProcessSpec,
    plan: &FaultPlan,
    graph: &'g Graph,
) -> Result<Box<dyn SpreadingProcess + Send + 'g>> {
    let Some(adversary) = &plan.adversary else {
        return Err(CoreError::InvalidParameters {
            reason: "build_adversarial requires a plan with an adv= clause".to_string(),
        });
    };
    if plan.churn.is_some() {
        return Err(CoreError::InvalidParameters {
            reason: "churn= re-instantiates the graph and cannot run on a fixed instance; \
                     drive the spec through fault::run_churned (repro ad-hoc mode does this \
                     automatically)"
                .to_string(),
        });
    }
    if plan.defense.is_some() {
        return Err(CoreError::InvalidParameters {
            reason: "def= policies wrap outside the adversary; build the spec via \
                     ProcessSpec::build (or defense::build_defended) instead of \
                     adversary::build_adversarial"
                .to_string(),
        });
    }
    let mut residual = plan.clone();
    residual.adversary = None;
    let protect = inner.start();
    let process: Box<dyn SpreadingProcess + Send + 'g> = match adversary {
        // The oblivious policy consumes the residual clauses itself.
        AdversarySpec::Oblivious => inner.build(graph)?,
        _ if residual.is_benign() => inner.build(graph)?,
        _ => Box::new(FaultedProcess::new(inner.build(graph)?, &residual, protect)?),
    };
    let policy = adversary.build_policy(&residual, protect, graph.num_vertices())?;
    Ok(Box::new(AdversarialProcess::new(process, graph, policy)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::run_until_complete;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    fn examples() -> Vec<AdversarySpec> {
        vec![
            AdversarySpec::Oblivious,
            AdversarySpec::CrashTopDegree {
                budget: AdversaryBudget::Percent { percent: 5.0 },
                rate: 1,
            },
            AdversarySpec::CrashTopDegree { budget: AdversaryBudget::Count { count: 12 }, rate: 3 },
            AdversarySpec::DropFrontier { f: 1.0 },
            AdversarySpec::DropFrontier { f: 0.75 },
            AdversarySpec::Partition { window: 16 },
        ]
    }

    #[test]
    fn spec_parse_and_display_round_trip() {
        for spec in examples() {
            let text = spec.to_string();
            let back: AdversarySpec = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(spec, back, "round trip through {text:?}");
        }
        assert_eq!("topdeg:budget=5%".parse::<AdversarySpec>().unwrap(), examples()[1]);
        assert_eq!(
            "topdeg:budget=12,rate=3".parse::<AdversarySpec>().unwrap(),
            AdversarySpec::CrashTopDegree { budget: AdversaryBudget::Count { count: 12 }, rate: 3 }
        );
        assert_eq!(
            "dropfront".parse::<AdversarySpec>().unwrap(),
            AdversarySpec::DropFrontier { f: 1.0 }
        );
        assert_eq!(
            "partition:window=8".parse::<AdversarySpec>().unwrap(),
            AdversarySpec::Partition { window: 8 }
        );
    }

    #[test]
    fn spec_serde_round_trip() {
        for spec in examples() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: AdversarySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "serde round trip through {json}");
        }
    }

    #[test]
    fn spec_parsing_rejects_junk() {
        assert!("frisbee".parse::<AdversarySpec>().is_err());
        assert!("topdeg".parse::<AdversarySpec>().is_err());
        assert!("topdeg:budget=150%".parse::<AdversarySpec>().is_err());
        assert!("topdeg:budget=abc".parse::<AdversarySpec>().is_err());
        assert!("topdeg:budget=5%,rate=0".parse::<AdversarySpec>().is_err());
        assert!("topdeg:budget=5%,bogus=1".parse::<AdversarySpec>().is_err());
        assert!("dropfront:f=1.5".parse::<AdversarySpec>().is_err());
        assert!("dropfront:f=abc".parse::<AdversarySpec>().is_err());
        assert!("partition".parse::<AdversarySpec>().is_err());
        assert!("partition:w=0".parse::<AdversarySpec>().is_err());
        assert!("oblivious:x=1".parse::<AdversarySpec>().is_err());
    }

    #[test]
    fn budget_resolves_and_caps_at_the_crashable_population() {
        assert_eq!(AdversaryBudget::Percent { percent: 25.0 }.resolve(40), 10);
        assert_eq!(AdversaryBudget::Count { count: 12 }.resolve(40), 12);
        assert_eq!(AdversaryBudget::Count { count: 99 }.resolve(40), 39);
        assert_eq!(AdversaryBudget::Percent { percent: 100.0 }.resolve(40), 39);
        assert_eq!(AdversaryBudget::Percent { percent: 0.0 }.resolve(40), 0);
    }

    #[test]
    fn top_degree_policy_crashes_the_hubs_first() {
        // A star: the hub (vertex 0) has degree n-1, every leaf degree 1. Start at a leaf
        // so the hub is crashable; the first strike must hit the hub.
        let graph = generators::star(8).unwrap();
        let spec: ProcessSpec = "push:start=1+adv=topdeg:budget=3".parse().unwrap();
        let mut process = spec.build(&graph).unwrap();
        let mut r = rng(3);
        process.step(&mut r);
        // After one observation the hub is down: PUSH from a leaf can inform the hub but
        // the rumour never leaves it again, so coverage freezes at {leaf, hub}.
        assert_eq!(run_until_complete(process.as_mut(), &mut r, 2_000), None);
        assert!(process.num_active() <= 2, "nothing spreads past the crashed hub");
    }

    #[test]
    fn top_degree_policy_respects_budget_rate_and_protection() {
        // Drive a real BIPS run (its infected set reaches every vertex fast on K_16, so
        // the policy always has crashable candidates) and watch the policy's own fault
        // view after every observation: at most `rate` new crashes per round, never the
        // protected source, and exactly the budget once enough rounds have passed.
        let graph = generators::complete(16).unwrap();
        let spec =
            AdversarySpec::CrashTopDegree { budget: AdversaryBudget::Count { count: 4 }, rate: 1 };
        let mut policy = spec.build_policy(&FaultPlan::default(), 0, 16).unwrap();
        let base: ProcessSpec = "bips:k=2".parse().unwrap();
        let mut inner = base.build(&graph).unwrap();
        let mut r = rng(7);
        let mut previous = 0;
        for round in 1..=10 {
            policy.observe(&ProcessView::new(inner.as_ref(), &graph), &mut r);
            let crashed = policy.faults().crashed_set().expect("budget > 0 allocates the set");
            let count = crashed.count();
            assert!(count <= 4, "round {round}: budget caps total crashes, got {count}");
            assert!(
                count - previous <= 1,
                "round {round}: rate=1 allows at most one new crash, got {}",
                count - previous
            );
            assert!(!crashed.contains(0), "round {round}: the protected source never crashes");
            previous = count;
            let faults = policy.faults();
            inner.step_faulted(&mut r, &faults);
        }
        assert_eq!(previous, 4, "ten rounds of a growing frontier must exhaust the budget");
    }

    #[test]
    fn zero_budget_top_degree_never_crashes() {
        let graph = generators::complete(16).unwrap();
        let spec: ProcessSpec = "cobra:k=2+adv=topdeg:budget=0".parse().unwrap();
        let mut process = spec.build(&graph).unwrap();
        let mut r = rng(5);
        assert!(run_until_complete(process.as_mut(), &mut r, 10_000).is_some());
    }

    #[test]
    fn drop_frontier_tracks_the_previous_delta() {
        let graph = generators::complete(16).unwrap();
        let base: ProcessSpec = "push".parse().unwrap();
        let mut policy = AdversarySpec::DropFrontier { f: 0.5 }
            .build_policy(&FaultPlan::default(), 0, 16)
            .unwrap();
        let inner = base.build(&graph).unwrap();
        let mut r = rng(11);
        policy.observe(&ProcessView::new(inner.as_ref(), &graph), &mut r);
        let faults = policy.faults();
        assert_eq!(faults.targeted_drop_probability(), 0.5);
        let front = faults.targeted_set().expect("initial delta is the start set");
        assert_eq!(front.count(), 1);
        assert!(front.contains(0));
        assert_eq!(faults.drop_probability(), 0.0, "no global drop");
    }

    #[test]
    fn frontier_drop_slows_push_but_it_still_completes() {
        // PUSH is monotone and non-frontier vertices keep pushing, so dropfront delays but
        // cannot halt it on a complete graph.
        let graph = generators::complete(64).unwrap();
        let bare: ProcessSpec = "push".parse().unwrap();
        let adv: ProcessSpec = "push+adv=dropfront".parse().unwrap();
        let mut totals = [0usize; 2];
        for seed in 0..5u64 {
            let mut p = bare.build(&graph).unwrap();
            totals[0] += run_until_complete(p.as_mut(), &mut rng(seed), 100_000).unwrap();
            let mut q = adv.build(&graph).unwrap();
            totals[1] += run_until_complete(q.as_mut(), &mut rng(seed), 100_000).unwrap();
        }
        assert!(
            totals[1] > totals[0],
            "dropping the growth front must cost rounds: bare {} vs adversarial {}",
            totals[0],
            totals[1]
        );
    }

    #[test]
    fn partition_policy_arms_freezes_and_releases() {
        let graph = generators::complete(8).unwrap();
        let base: ProcessSpec = "push".parse().unwrap();
        let mut policy = AdversarySpec::Partition { window: 3 }
            .build_policy(&FaultPlan::default(), 0, 8)
            .unwrap();
        let mut inner = base.build(&graph).unwrap();
        // Put the process at exactly half coverage: the first observation sees the
        // four-vertex delta, arms, and strikes.
        inner.adopt_state(&[0, 1, 2, 3], None).unwrap();
        let mut r = rng(13);
        for round in 0..3 {
            policy.observe(&ProcessView::new(inner.as_ref(), &graph), &mut r);
            let faults = policy.faults();
            let side = faults
                .severed_side()
                .unwrap_or_else(|| panic!("round {round}: the armed policy must sever"));
            // The frozen sweep side is a nontrivial cut and severs crossing pairs only.
            let count = side.count();
            assert!(count > 0 && count < 8, "sweep side must be a proper cut, got {count}");
            let inside = side.iter().next().unwrap();
            let outside = (0..8).find(|&v| !side.contains(v)).unwrap();
            assert!(faults.severs(inside, outside));
            assert!(!faults.severs(inside, inside));
            assert!(!faults.severs(outside, outside));
        }
        // The window is spent and the tracked sparsity has not improved, so the cut
        // releases — severances are windows, not permanent cuts...
        policy.observe(&ProcessView::new(inner.as_ref(), &graph), &mut r);
        assert!(policy.faults().severed_side().is_none(), "window over, cut released");
        // ...and the process completes unhindered afterwards.
        assert!(run_until_complete(inner.as_mut(), &mut r, 10_000).is_some());
    }

    #[test]
    fn spectral_sweep_cut_is_at_least_as_sparse_as_the_frontier_cut() {
        use cobra_spectral::conductance::{cut_conductance, spectral_sweep_conductance};
        // On a torus the frontier's half-coverage blob has a fat boundary while the sweep
        // recovers a thin band; on an expander every cut is fat, so the sweep can at worst
        // match. Either way the severed cut must not be *less* sparse than the frontier
        // cut it replaced.
        let torus = generators::torus_2d(8, 8).unwrap();
        let expander = generators::connected_random_regular(64, 8, &mut rng(23)).unwrap();
        for (name, graph) in [("torus", &torus), ("expander", &expander)] {
            let n = graph.num_vertices();
            // Grow a PUSH process to at least half coverage: its informed set is the
            // ever-active side the old policy would have severed.
            let base: ProcessSpec = "push".parse().unwrap();
            let mut process = base.build(graph).unwrap();
            let mut r = rng(29);
            while 2 * process.num_active() < n {
                process.step(&mut r);
            }
            let mut frontier_side = vec![false; n];
            process.for_each_active(&mut |v| frontier_side[v] = true);
            if frontier_side.iter().all(|&b| b) {
                panic!("{name}: process overshot to full coverage; pick a slower horizon");
            }
            let frontier_phi = cut_conductance(graph, &frontier_side).unwrap();
            let sweep = spectral_sweep_conductance(graph, &mut rng(31)).unwrap();
            let mut sweep_side = vec![false; n];
            for &v in &sweep.side {
                sweep_side[v] = true;
            }
            let sweep_phi = cut_conductance(graph, &sweep_side).unwrap();
            assert!(
                sweep_phi <= frontier_phi + 1e-9,
                "{name}: sweep cut (phi = {sweep_phi:.4}) must be at least as sparse as \
                 the frontier cut (phi = {frontier_phi:.4}) it replaced"
            );
        }
    }

    #[test]
    fn adversarial_specs_build_run_and_reset_through_the_runner() {
        use crate::sim::Runner;
        let graph = generators::complete(32).unwrap();
        for text in [
            "cobra:k=2+adv=oblivious+drop=0.1",
            "cobra:k=2+adv=topdeg:budget=2,rate=1",
            "push+adv=dropfront:f=0.5",
            "push+adv=partition:w=4",
            "bips:k=2+drop=0.1+adv=topdeg:budget=2",
        ] {
            let spec: ProcessSpec = text.parse().unwrap();
            let mut process = spec.build(&graph).unwrap_or_else(|e| panic!("{text}: {e}"));
            let outcome = Runner::new(100_000).run(process.as_mut(), &mut rng(17));
            assert!(outcome.completed(), "{text} should complete on K_32: {outcome:?}");
            // Reset and re-run: budgets refill, tracked sets clear.
            process.reset();
            assert_eq!(process.round(), 0);
            let again = Runner::new(100_000).run(process.as_mut(), &mut rng(18));
            assert!(again.completed(), "{text} should complete after reset: {again:?}");
        }
    }

    #[test]
    fn faulted_process_rejects_adversary_plans() {
        let graph = generators::complete(8).unwrap();
        let base = ProcessSpec::cobra(2).unwrap();
        let plan = FaultPlan { adversary: Some(AdversarySpec::Oblivious), ..FaultPlan::default() };
        assert!(FaultedProcess::new(base.build(&graph).unwrap(), &plan, 0).is_err());
    }

    #[test]
    fn build_adversarial_rejects_churn_and_missing_adv() {
        let graph = generators::complete(8).unwrap();
        let base = ProcessSpec::cobra(2).unwrap();
        assert!(build_adversarial(&base, &FaultPlan::default(), &graph).is_err());
        let churny = FaultPlan {
            adversary: Some(AdversarySpec::Oblivious),
            churn: Some(4),
            ..FaultPlan::default()
        };
        assert!(build_adversarial(&base, &churny, &graph).is_err());
    }

    #[test]
    fn adversarial_churned_specs_run_through_the_segment_driver() {
        use crate::fault::run_churned;
        use crate::sim::Runner;
        use cobra_graph::generators::GraphFamily;
        let family = GraphFamily::RandomRegular { n: 48, r: 4 };
        let spec: ProcessSpec = "cobra:k=2+adv=dropfront:f=0.5+churn=8".parse().unwrap();
        let runner = Runner::new(100_000);
        let a = run_churned(&spec, &family, &runner, &mut rng(19)).unwrap();
        let b = run_churned(&spec, &family, &runner, &mut rng(19)).unwrap();
        assert_eq!(a, b, "adversarial churned runs stay deterministic");
        assert!(a.rounds > 0);
    }
}
