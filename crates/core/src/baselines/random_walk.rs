//! A single simple random walk.

use cobra_graph::{Graph, VertexBitset, VertexId};
use rand::RngCore;

use crate::fault::StepFaults;
use crate::parallel::ParallelFrontier;
use crate::process::SpreadingProcess;
use crate::{CoreError, Result};

/// A simple random walk used as the `k = 1` baseline.
///
/// Its cover time is `Ω(n log n)` on every graph and `Θ(n log n)` on expanders — the contrast
/// that motivates COBRA's branching: a single token cannot cover in `O(log n)` rounds no matter
/// how well the graph expands. A step is `O(1)`: one buffered neighbour sample, two bit flips.
#[derive(Debug, Clone)]
pub struct RandomWalk<'g> {
    graph: &'g Graph,
    start: VertexId,
    position: VertexId,
    active: VertexBitset,
    newly: Vec<VertexId>,
    visited: VertexBitset,
    num_visited: usize,
    round: usize,
}

impl<'g> RandomWalk<'g> {
    /// Creates a walk starting at `start`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VertexOutOfRange`] if `start` is out of range and
    /// [`CoreError::UnsuitableGraph`] for the empty graph or graphs with isolated vertices.
    pub fn new(graph: &'g Graph, start: VertexId) -> Result<Self> {
        let n = graph.num_vertices();
        if n == 0 {
            return Err(CoreError::UnsuitableGraph { reason: "empty graph".to_string() });
        }
        if start >= n {
            return Err(CoreError::VertexOutOfRange { vertex: start, num_vertices: n });
        }
        if n > 1 {
            if let Some(isolated) = graph.vertices().find(|&v| graph.degree(v) == 0) {
                return Err(CoreError::UnsuitableGraph {
                    reason: format!("vertex {isolated} is isolated and can never be visited"),
                });
            }
        }
        let mut active = VertexBitset::new(n);
        active.insert(start);
        let mut visited = VertexBitset::new(n);
        visited.insert(start);
        Ok(RandomWalk {
            graph,
            start,
            position: start,
            active,
            newly: vec![start],
            visited,
            num_visited: 1,
            round: 0,
        })
    }

    /// The current position of the walker.
    pub fn position(&self) -> VertexId {
        self.position
    }

    /// Number of distinct vertices visited so far.
    pub fn num_visited(&self) -> usize {
        self.num_visited
    }
}

impl SpreadingProcess for RandomWalk<'_> {
    // cobra-lint: hot
    // cobra-lint: draws(bounded)
    fn step_faulted(&mut self, rng: &mut dyn RngCore, faults: &StepFaults<'_>) {
        self.newly.clear();
        // A crashed vertex never relays: a walker standing on one is stuck there forever.
        // A dropped move message leaves the token in place for this round.
        if faults.is_crashed(self.position) || faults.drops_from(rng, self.position) {
            self.round += 1;
            return;
        }
        if let Some(next) = self.graph.sample_neighbor(self.position, rng) {
            // A severed cut blocks the traversal (the target draw is already consumed), as
            // does a bad per-edge channel on the chosen link; otherwise the walker always
            // moves — simple graphs have no self-loops.
            if !faults.severs(self.position, next)
                && !faults.drops_on_edge(rng, self.position, next)
            {
                self.active.remove(self.position);
                self.position = next;
                self.active.insert(next);
                self.newly.push(next);
                if self.visited.insert(next) {
                    self.num_visited += 1;
                }
            }
        }
        self.round += 1;
    }

    // Stream mode: a single walker has nothing to shard — it simply draws from the stream
    // of its *current position* at this round, so the trajectory is a pure function of the
    // trial key and the walk composes with the sharded processes under one contract.
    // cobra-lint: par
    // cobra-lint: draws(bounded)
    fn step_streams(&mut self, engine: &ParallelFrontier, faults: &StepFaults<'_>) -> Result<()> {
        self.newly.clear();
        let mut rng = engine.stream(self.position as u64, self.round as u64);
        if faults.is_crashed(self.position) || faults.drops_from(&mut rng, self.position) {
            self.round += 1;
            return Ok(());
        }
        if let Some(next) = self.graph.sample_neighbor(self.position, &mut rng) {
            if !faults.severs(self.position, next)
                && !faults.drops_on_edge(&mut rng, self.position, next)
            {
                self.active.remove(self.position);
                self.position = next;
                self.active.insert(next);
                self.newly.push(next);
                if self.visited.insert(next) {
                    self.num_visited += 1;
                }
            }
        }
        self.round += 1;
        Ok(())
    }

    fn supports_streams(&self) -> bool {
        true
    }

    fn round(&self) -> usize {
        self.round
    }

    fn active(&self) -> &VertexBitset {
        &self.active
    }

    fn num_active(&self) -> usize {
        1
    }

    fn newly_activated(&self) -> &[VertexId] {
        &self.newly
    }

    fn for_each_active(&self, f: &mut dyn FnMut(VertexId)) {
        f(self.position);
    }

    fn is_complete(&self) -> bool {
        self.num_visited == self.graph.num_vertices()
    }

    fn coverage(&self) -> Option<&VertexBitset> {
        Some(&self.visited)
    }

    fn adopt_state(&mut self, active: &[VertexId], coverage: Option<&VertexBitset>) -> Result<()> {
        crate::process::validate_adopted_state(self.graph.num_vertices(), active, coverage)?;
        let &position = active.first().ok_or_else(|| CoreError::InvalidParameters {
            reason: "a random walk adopts exactly one active vertex, got none".to_string(),
        })?;
        self.active.remove(self.position);
        self.position = position;
        self.active.insert(position);
        self.newly.clear();
        self.newly.push(position);
        self.visited.clear();
        match coverage {
            Some(seen) => seen.for_each(&mut |v| {
                self.visited.insert(v);
            }),
            None => {
                self.visited.insert(position);
            }
        }
        self.visited.insert(position);
        self.num_visited = self.visited.count();
        self.round = 0;
        Ok(())
    }

    fn reset(&mut self) {
        self.active.remove(self.position);
        self.visited.clear();
        self.position = self.start;
        self.active.insert(self.start);
        self.visited.insert(self.start);
        self.newly.clear();
        self.newly.push(self.start);
        self.num_visited = 1;
        self.round = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::run_until_complete;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates() {
        let g = generators::cycle(5).unwrap();
        assert!(RandomWalk::new(&g, 7).is_err());
        assert!(RandomWalk::new(&cobra_graph::Graph::default(), 0).is_err());
        let isolated = cobra_graph::Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(RandomWalk::new(&isolated, 0).is_err());
    }

    #[test]
    fn walker_moves_along_edges_and_covers_small_graphs() {
        let g = generators::petersen().unwrap();
        let mut walk = RandomWalk::new(&g, 0).unwrap();
        let mut r = rng(1);
        let mut previous = walk.position();
        for _ in 0..50 {
            walk.step(&mut r);
            assert!(g.has_edge(previous, walk.position()), "walk must follow edges");
            assert_eq!(walk.num_active(), 1);
            assert_eq!(walk.active().iter().collect::<Vec<_>>(), vec![walk.position()]);
            assert_eq!(walk.newly_activated(), &[walk.position()]);
            previous = walk.position();
        }
        walk.reset();
        let rounds = run_until_complete(&mut walk, &mut r, 100_000).unwrap();
        assert!(rounds >= 9, "needs at least n-1 steps, got {rounds}");
    }

    #[test]
    fn cover_time_is_much_larger_than_cobra_on_expanders() {
        let g = generators::complete(64).unwrap();
        let mut r = rng(2);
        let mut walk = RandomWalk::new(&g, 0).unwrap();
        let walk_rounds = run_until_complete(&mut walk, &mut r, 1_000_000).unwrap();
        let mut cobra =
            crate::cobra::CobraProcess::new(&g, 0, crate::cobra::Branching::fixed(2).unwrap())
                .unwrap();
        let cobra_rounds = run_until_complete(&mut cobra, &mut r, 1_000_000).unwrap();
        assert!(
            walk_rounds > 3 * cobra_rounds,
            "single walk ({walk_rounds}) should be far slower than COBRA ({cobra_rounds})"
        );
    }

    #[test]
    fn reset_restores_start() {
        let g = generators::cycle(8).unwrap();
        let mut walk = RandomWalk::new(&g, 3).unwrap();
        let mut r = rng(3);
        for _ in 0..10 {
            walk.step(&mut r);
        }
        walk.reset();
        assert_eq!(walk.position(), 3);
        assert_eq!(walk.round(), 0);
        assert_eq!(walk.num_visited(), 1);
        assert!(walk.active().contains(3));
    }
}
