//! Baseline information-spreading processes the paper positions COBRA against.
//!
//! * [`random_walk`] — a single simple random walk (`k = 1` COBRA): cover time `Ω(n log n)` on
//!   every graph, the lower anchor of the branching-factor experiment (Theorem 3 discussion).
//! * [`multiple_walks`] — `w` independent random walks started at the same vertex, the
//!   classical "many random walks" comparison point ([Alon et al.; Elsässer & Sauerwald]).
//! * [`push`] — the classical PUSH rumour-spreading protocol (every informed vertex pushes to
//!   one random neighbour and *stays informed*), the simplest gossip model mentioned in the
//!   paper's opening paragraph.
//! * [`PushPullProcess`] — the PUSH–PULL variant in which uninformed vertices also pull.
//! * [`contact`] — a discrete-time SIS contact process with a persistent source, the epidemic
//!   model family (Harris' contact process) that BIPS discretises.
//!
//! All baselines implement [`SpreadingProcess`](crate::process::SpreadingProcess) so they plug
//! into the same measurement and experiment code as COBRA and BIPS.

pub mod contact;
pub mod multiple_walks;
pub mod push;
pub mod random_walk;

pub use contact::ContactProcess;
pub use multiple_walks::MultipleRandomWalks;
pub use push::{PushProcess, PushPullProcess};
pub use random_walk::RandomWalk;
