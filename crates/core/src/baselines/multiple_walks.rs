//! Multiple independent random walks from a common start vertex.

use cobra_graph::{Graph, VertexBitset, VertexId};
use rand::RngCore;

use crate::fault::StepFaults;
use crate::parallel::ParallelFrontier;
use crate::process::SpreadingProcess;
use crate::{CoreError, Result};

/// `w` independent simple random walks started at the same vertex.
///
/// This is the classical "many random walks" setting (Alon et al., CPC 2011; Elsässer &
/// Sauerwald, ICALP 2009) whose techniques the paper explains are *not* sufficient for COBRA
/// because COBRA's walks are highly dependent. It serves as a communication-matched baseline:
/// `w` walkers send `w` messages per round just like COBRA sends `≤ k·|C_t|`.
///
/// A round costs `O(w)`: walker moves plus dirty-list maintenance of the occupancy bitset —
/// never an `O(n)` rescan, which matters because the cover time is `Θ(n log n / w)` rounds.
#[derive(Debug, Clone)]
pub struct MultipleRandomWalks<'g> {
    graph: &'g Graph,
    start: VertexId,
    positions: Vec<VertexId>,
    /// Occupied vertices this round; members listed in `active_list`.
    active: VertexBitset,
    active_list: Vec<VertexId>,
    /// Scratch occupancy; its stale bits are exactly `next_list` between steps.
    next_active: VertexBitset,
    next_list: Vec<VertexId>,
    newly: Vec<VertexId>,
    visited: VertexBitset,
    num_visited: usize,
    round: usize,
}

impl<'g> MultipleRandomWalks<'g> {
    /// Creates `walkers` independent walks all starting at `start`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `walkers == 0`,
    /// [`CoreError::VertexOutOfRange`] for a bad start vertex and
    /// [`CoreError::UnsuitableGraph`] for empty graphs or graphs with isolated vertices.
    pub fn new(graph: &'g Graph, start: VertexId, walkers: usize) -> Result<Self> {
        let n = graph.num_vertices();
        if n == 0 {
            return Err(CoreError::UnsuitableGraph { reason: "empty graph".to_string() });
        }
        if start >= n {
            return Err(CoreError::VertexOutOfRange { vertex: start, num_vertices: n });
        }
        if walkers == 0 {
            return Err(CoreError::InvalidParameters {
                reason: "need at least one walker".to_string(),
            });
        }
        if n > 1 {
            if let Some(isolated) = graph.vertices().find(|&v| graph.degree(v) == 0) {
                return Err(CoreError::UnsuitableGraph {
                    reason: format!("vertex {isolated} is isolated and can never be visited"),
                });
            }
        }
        let mut active = VertexBitset::new(n);
        active.insert(start);
        let mut visited = VertexBitset::new(n);
        visited.insert(start);
        Ok(MultipleRandomWalks {
            graph,
            start,
            positions: vec![start; walkers],
            active,
            active_list: vec![start],
            next_active: VertexBitset::new(n),
            next_list: Vec::new(),
            newly: vec![start],
            visited,
            num_visited: 1,
            round: 0,
        })
    }

    /// Number of walkers.
    pub fn num_walkers(&self) -> usize {
        self.positions.len()
    }

    /// Current positions of all walkers.
    pub fn positions(&self) -> &[VertexId] {
        &self.positions
    }

    /// Number of distinct vertices visited so far.
    pub fn num_visited(&self) -> usize {
        self.num_visited
    }
}

impl SpreadingProcess for MultipleRandomWalks<'_> {
    // cobra-lint: hot
    // cobra-lint: draws(bounded)
    fn step_faulted(&mut self, rng: &mut dyn RngCore, faults: &StepFaults<'_>) {
        // Erase the two-rounds-old occupancy through its dirty list.
        self.next_active.clear_list(&self.next_list);
        self.next_list.clear();
        self.newly.clear();
        for i in 0..self.positions.len() {
            // A walker on a crashed vertex is stuck; a dropped move stays in place; a
            // severed cut (or a bad per-edge channel on the chosen link) blocks the
            // traversal after the target draw.
            if !faults.is_crashed(self.positions[i]) && !faults.drops_from(rng, self.positions[i]) {
                if let Some(next) = self.graph.sample_neighbor(self.positions[i], rng) {
                    if !faults.severs(self.positions[i], next)
                        && !faults.drops_on_edge(rng, self.positions[i], next)
                    {
                        self.positions[i] = next;
                    }
                }
            }
            let p = self.positions[i];
            if self.next_active.insert(p) {
                self.next_list.push(p);
                if !self.active.contains(p) {
                    self.newly.push(p);
                }
                if self.visited.insert(p) {
                    self.num_visited += 1;
                }
            }
        }
        std::mem::swap(&mut self.active, &mut self.next_active);
        std::mem::swap(&mut self.active_list, &mut self.next_list);
        self.round += 1;
    }

    // Stream mode: walker `i` owns the entity id `i` (keying by *position* would weld
    // co-located walkers together — they would share every draw and never separate), so
    // the position vector shards cleanly and merges back in walker order.
    // cobra-lint: par
    // cobra-lint: draws(bounded)
    fn step_streams(&mut self, engine: &ParallelFrontier, faults: &StepFaults<'_>) -> Result<()> {
        self.next_active.clear_list(&self.next_list);
        self.next_list.clear();
        self.newly.clear();
        let graph = self.graph;
        let round = self.round as u64;
        let streams = engine.streams();
        let shards = engine.fan_out(&self.positions, |base, chunk| {
            let mut moved: Vec<VertexId> = Vec::with_capacity(chunk.len());
            for (offset, &position) in chunk.iter().enumerate() {
                let mut rng = streams.stream((base + offset) as u64, round);
                let mut landed = position;
                if !faults.is_crashed(position) && !faults.drops_from(&mut rng, position) {
                    if let Some(next) = graph.sample_neighbor(position, &mut rng) {
                        if !faults.severs(position, next)
                            && !faults.drops_on_edge(&mut rng, position, next)
                        {
                            landed = next;
                        }
                    }
                }
                moved.push(landed);
            }
            moved
        });
        for (walker, landed) in shards.into_iter().flatten().enumerate() {
            self.positions[walker] = landed;
            if self.next_active.insert(landed) {
                self.next_list.push(landed);
                if !self.active.contains(landed) {
                    self.newly.push(landed);
                }
                if self.visited.insert(landed) {
                    self.num_visited += 1;
                }
            }
        }
        std::mem::swap(&mut self.active, &mut self.next_active);
        std::mem::swap(&mut self.active_list, &mut self.next_list);
        self.round += 1;
        Ok(())
    }

    fn supports_streams(&self) -> bool {
        true
    }

    fn round(&self) -> usize {
        self.round
    }

    fn active(&self) -> &VertexBitset {
        &self.active
    }

    fn num_active(&self) -> usize {
        self.active_list.len()
    }

    fn newly_activated(&self) -> &[VertexId] {
        &self.newly
    }

    fn for_each_active(&self, f: &mut dyn FnMut(VertexId)) {
        for &v in &self.active_list {
            f(v);
        }
    }

    fn for_each_token(&self, f: &mut dyn FnMut(VertexId)) {
        // One token per walker (not per occupied vertex): several walkers on the same
        // vertex appear as repeated entries, so churn migration preserves multiplicity.
        for &p in &self.positions {
            f(p);
        }
    }

    fn is_complete(&self) -> bool {
        self.num_visited == self.graph.num_vertices()
    }

    fn coverage(&self) -> Option<&VertexBitset> {
        Some(&self.visited)
    }

    fn adopt_state(&mut self, active: &[VertexId], coverage: Option<&VertexBitset>) -> Result<()> {
        crate::process::validate_adopted_state(self.graph.num_vertices(), active, coverage)?;
        if active.is_empty() {
            return Err(CoreError::InvalidParameters {
                reason: "multiple walks adopt at least one active vertex, got none".to_string(),
            });
        }
        self.active.clear_list(&self.active_list);
        self.next_active.clear_list(&self.next_list);
        self.active_list.clear();
        self.next_list.clear();
        self.newly.clear();
        self.visited.clear();
        // One adopted entry per walker (the token list `for_each_token` emits, possibly
        // with repeats) restores the exact per-vertex walker counts; any other length
        // falls back to spreading walkers round-robin over the adopted set.
        let walkers = self.positions.len();
        for (i, p) in self.positions.iter_mut().enumerate() {
            *p = if active.len() == walkers { active[i] } else { active[i % active.len()] };
        }
        // The occupancy set derives from the walker positions, never the other way round.
        for i in 0..walkers {
            let p = self.positions[i];
            if self.active.insert(p) {
                self.newly.push(p);
            }
        }
        self.active.collect_into(&mut self.active_list);
        if let Some(seen) = coverage {
            seen.for_each(&mut |v| {
                self.visited.insert(v);
            });
        }
        for &v in active {
            self.visited.insert(v);
        }
        self.num_visited = self.visited.count();
        self.round = 0;
        Ok(())
    }

    fn reset(&mut self) {
        self.active.clear_list(&self.active_list);
        self.next_active.clear_list(&self.next_list);
        self.active_list.clear();
        self.next_list.clear();
        self.visited.clear();
        for p in &mut self.positions {
            *p = self.start;
        }
        self.active.insert(self.start);
        self.active_list.push(self.start);
        self.visited.insert(self.start);
        self.newly.clear();
        self.newly.push(self.start);
        self.num_visited = 1;
        self.round = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::run_until_complete;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates() {
        let g = generators::cycle(5).unwrap();
        assert!(MultipleRandomWalks::new(&g, 0, 0).is_err());
        assert!(MultipleRandomWalks::new(&g, 9, 2).is_err());
        assert!(MultipleRandomWalks::new(&cobra_graph::Graph::default(), 0, 1).is_err());
    }

    #[test]
    fn more_walkers_cover_faster_on_average() {
        let g = generators::connected_random_regular(128, 3, &mut rng(1)).unwrap();
        let mut total_1 = 0usize;
        let mut total_8 = 0usize;
        for seed in 0..5u64 {
            let mut one = MultipleRandomWalks::new(&g, 0, 1).unwrap();
            total_1 += run_until_complete(&mut one, &mut rng(10 + seed), 10_000_000).unwrap();
            let mut eight = MultipleRandomWalks::new(&g, 0, 8).unwrap();
            total_8 += run_until_complete(&mut eight, &mut rng(20 + seed), 10_000_000).unwrap();
        }
        assert!(total_8 < total_1, "8 walkers ({total_8}) should beat 1 walker ({total_1})");
    }

    #[test]
    fn active_set_size_is_at_most_the_number_of_walkers() {
        let g = generators::hypercube(5).unwrap();
        let mut walks = MultipleRandomWalks::new(&g, 0, 6).unwrap();
        let mut r = rng(2);
        for _ in 0..50 {
            walks.step(&mut r);
            assert!(walks.num_active() <= 6);
            assert!(walks.num_active() >= 1);
            assert_eq!(walks.positions().len(), 6);
            assert_eq!(walks.active().count(), walks.num_active());
            // Every occupied vertex is a walker position and vice versa.
            for &p in walks.positions() {
                assert!(walks.active().contains(p));
            }
        }
    }

    #[test]
    fn tokens_enumerate_one_entry_per_walker() {
        let g = generators::complete(8).unwrap();
        let mut walks = MultipleRandomWalks::new(&g, 3, 5).unwrap();
        let mut tokens = Vec::new();
        walks.for_each_token(&mut |v| tokens.push(v));
        assert_eq!(tokens, vec![3; 5], "all walkers start stacked on the start vertex");
        let mut r = rng(11);
        for _ in 0..7 {
            walks.step(&mut r);
        }
        tokens.clear();
        walks.for_each_token(&mut |v| tokens.push(v));
        assert_eq!(tokens, walks.positions(), "tokens are exactly the walker positions");
    }

    #[test]
    fn adopting_one_token_per_walker_preserves_multiplicity() {
        let g = generators::cycle(10).unwrap();
        let mut walks = MultipleRandomWalks::new(&g, 0, 4).unwrap();
        // Three walkers stacked on vertex 7, one on vertex 2: the occupancy set alone
        // would lose the stacking.
        walks.adopt_state(&[7, 7, 2, 7], None).unwrap();
        assert_eq!(walks.positions(), &[7, 7, 2, 7]);
        assert_eq!(walks.num_active(), 2, "two occupied vertices");
        assert!(walks.active().contains(7) && walks.active().contains(2));
        assert_eq!(walks.num_walkers(), 4, "walker count is conserved");
        // The process keeps running correctly from the adopted configuration.
        let mut r = rng(4);
        assert!(run_until_complete(&mut walks, &mut r, 1_000_000).is_some());
    }

    #[test]
    fn adopting_a_plain_active_set_falls_back_to_round_robin() {
        let g = generators::cycle(10).unwrap();
        let mut walks = MultipleRandomWalks::new(&g, 0, 5).unwrap();
        walks.adopt_state(&[1, 8], None).unwrap();
        assert_eq!(walks.positions(), &[1, 8, 1, 8, 1]);
        assert_eq!(walks.num_active(), 2);
        assert!(walks.adopt_state(&[], None).is_err(), "adopting nothing is rejected");
    }

    #[test]
    fn reset_restores_everything() {
        let g = generators::petersen().unwrap();
        let mut walks = MultipleRandomWalks::new(&g, 4, 3).unwrap();
        let mut r = rng(3);
        run_until_complete(&mut walks, &mut r, 100_000).unwrap();
        walks.reset();
        assert_eq!(walks.round(), 0);
        assert_eq!(walks.num_visited(), 1);
        assert!(walks.positions().iter().all(|&p| p == 4));
        assert_eq!(walks.num_walkers(), 3);
        assert_eq!(walks.newly_activated(), &[4]);
        // The process still runs correctly after the reset.
        assert!(run_until_complete(&mut walks, &mut r, 100_000).is_some());
    }
}
