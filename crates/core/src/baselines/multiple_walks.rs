//! Multiple independent random walks from a common start vertex.

use cobra_graph::{Graph, VertexId};
use rand::{Rng, RngCore};

use crate::process::SpreadingProcess;
use crate::{CoreError, Result};

/// `w` independent simple random walks started at the same vertex.
///
/// This is the classical "many random walks" setting (Alon et al., CPC 2011; Elsässer &
/// Sauerwald, ICALP 2009) whose techniques the paper explains are *not* sufficient for COBRA
/// because COBRA's walks are highly dependent. It serves as a communication-matched baseline:
/// `w` walkers send `w` messages per round just like COBRA sends `≤ k·|C_t|`.
#[derive(Debug, Clone)]
pub struct MultipleRandomWalks<'g> {
    graph: &'g Graph,
    start: VertexId,
    positions: Vec<VertexId>,
    active: Vec<bool>,
    num_active: usize,
    visited: Vec<bool>,
    num_visited: usize,
    round: usize,
}

impl<'g> MultipleRandomWalks<'g> {
    /// Creates `walkers` independent walks all starting at `start`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if `walkers == 0`,
    /// [`CoreError::VertexOutOfRange`] for a bad start vertex and
    /// [`CoreError::UnsuitableGraph`] for empty graphs or graphs with isolated vertices.
    pub fn new(graph: &'g Graph, start: VertexId, walkers: usize) -> Result<Self> {
        let n = graph.num_vertices();
        if n == 0 {
            return Err(CoreError::UnsuitableGraph { reason: "empty graph".to_string() });
        }
        if start >= n {
            return Err(CoreError::VertexOutOfRange { vertex: start, num_vertices: n });
        }
        if walkers == 0 {
            return Err(CoreError::InvalidParameters {
                reason: "need at least one walker".to_string(),
            });
        }
        if n > 1 {
            if let Some(isolated) = graph.vertices().find(|&v| graph.degree(v) == 0) {
                return Err(CoreError::UnsuitableGraph {
                    reason: format!("vertex {isolated} is isolated and can never be visited"),
                });
            }
        }
        let mut active = vec![false; n];
        active[start] = true;
        let mut visited = vec![false; n];
        visited[start] = true;
        Ok(MultipleRandomWalks {
            graph,
            start,
            positions: vec![start; walkers],
            active,
            num_active: 1,
            visited,
            num_visited: 1,
            round: 0,
        })
    }

    /// Number of walkers.
    pub fn num_walkers(&self) -> usize {
        self.positions.len()
    }

    /// Current positions of all walkers.
    pub fn positions(&self) -> &[VertexId] {
        &self.positions
    }

    /// Number of distinct vertices visited so far.
    pub fn num_visited(&self) -> usize {
        self.num_visited
    }
}

impl SpreadingProcess for MultipleRandomWalks<'_> {
    fn step(&mut self, rng: &mut dyn RngCore) {
        self.active.fill(false);
        self.num_active = 0;
        for position in &mut self.positions {
            let degree = self.graph.degree(*position);
            if degree > 0 {
                *position = self.graph.neighbor(*position, rng.gen_range(0..degree));
            }
            if !self.active[*position] {
                self.active[*position] = true;
                self.num_active += 1;
            }
            if !self.visited[*position] {
                self.visited[*position] = true;
                self.num_visited += 1;
            }
        }
        self.round += 1;
    }

    fn round(&self) -> usize {
        self.round
    }

    fn active(&self) -> &[bool] {
        &self.active
    }

    fn num_active(&self) -> usize {
        self.num_active
    }

    fn is_complete(&self) -> bool {
        self.num_visited == self.graph.num_vertices()
    }

    fn reset(&mut self) {
        self.active.fill(false);
        self.visited.fill(false);
        for p in &mut self.positions {
            *p = self.start;
        }
        self.active[self.start] = true;
        self.num_active = 1;
        self.visited[self.start] = true;
        self.num_visited = 1;
        self.round = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::run_until_complete;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates() {
        let g = generators::cycle(5).unwrap();
        assert!(MultipleRandomWalks::new(&g, 0, 0).is_err());
        assert!(MultipleRandomWalks::new(&g, 9, 2).is_err());
        assert!(MultipleRandomWalks::new(&cobra_graph::Graph::default(), 0, 1).is_err());
    }

    #[test]
    fn more_walkers_cover_faster_on_average() {
        let g = generators::connected_random_regular(128, 3, &mut rng(1)).unwrap();
        let mut total_1 = 0usize;
        let mut total_8 = 0usize;
        for seed in 0..5u64 {
            let mut one = MultipleRandomWalks::new(&g, 0, 1).unwrap();
            total_1 += run_until_complete(&mut one, &mut rng(10 + seed), 10_000_000).unwrap();
            let mut eight = MultipleRandomWalks::new(&g, 0, 8).unwrap();
            total_8 += run_until_complete(&mut eight, &mut rng(20 + seed), 10_000_000).unwrap();
        }
        assert!(total_8 < total_1, "8 walkers ({total_8}) should beat 1 walker ({total_1})");
    }

    #[test]
    fn active_set_size_is_at_most_the_number_of_walkers() {
        let g = generators::hypercube(5).unwrap();
        let mut walks = MultipleRandomWalks::new(&g, 0, 6).unwrap();
        let mut r = rng(2);
        for _ in 0..50 {
            walks.step(&mut r);
            assert!(walks.num_active() <= 6);
            assert!(walks.num_active() >= 1);
            assert_eq!(walks.positions().len(), 6);
        }
    }

    #[test]
    fn reset_restores_everything() {
        let g = generators::petersen().unwrap();
        let mut walks = MultipleRandomWalks::new(&g, 4, 3).unwrap();
        let mut r = rng(3);
        run_until_complete(&mut walks, &mut r, 100_000).unwrap();
        walks.reset();
        assert_eq!(walks.round(), 0);
        assert_eq!(walks.num_visited(), 1);
        assert!(walks.positions().iter().all(|&p| p == 4));
        assert_eq!(walks.num_walkers(), 3);
    }
}
