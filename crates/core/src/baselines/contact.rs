//! A discrete-time SIS contact process with an optional persistent source.
//!
//! The paper notes that COBRA/BIPS is a discrete cousin of Harris' contact process: infected
//! vertices infect each neighbour at rate `µ` and recover at rate 1. The discrete-time
//! approximation here proceeds in rounds: an infected vertex infects each neighbour
//! independently with probability `infection_probability`, and then recovers with probability
//! `recovery_probability` (unless it is the persistent source, mirroring the BVDV
//! "persistently infected animal" scenario the paper cites). Unlike BIPS, the process can die
//! out when no source is pinned — which is exactly the behaviour the experiments contrast.
//!
//! Transmission is push-style, so a round iterates the explicit infected frontier and costs
//! `O(Σ_{u ∈ A_t} deg(u) + n/64)` — independent of how many vertices are *healthy*.

use cobra_graph::{Graph, VertexBitset, VertexId};
use rand::{Rng, RngCore};

use crate::fault::StepFaults;
use crate::parallel::ParallelFrontier;
use crate::process::SpreadingProcess;
use crate::{CoreError, Result};

/// Parameters of the discrete SIS contact process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactParameters {
    /// Probability that an infected vertex transmits to a given neighbour in one round.
    pub infection_probability: f64,
    /// Probability that an infected vertex recovers at the end of a round.
    pub recovery_probability: f64,
}

impl ContactParameters {
    /// Validated constructor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if either probability is outside `[0, 1]`.
    pub fn new(infection_probability: f64, recovery_probability: f64) -> Result<Self> {
        for (name, p) in [("infection", infection_probability), ("recovery", recovery_probability)]
        {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(CoreError::InvalidParameters {
                    reason: format!("{name} probability {p} must be in [0, 1]"),
                });
            }
        }
        Ok(ContactParameters { infection_probability, recovery_probability })
    }
}

/// A running discrete SIS contact process.
#[derive(Debug, Clone)]
pub struct ContactProcess<'g> {
    graph: &'g Graph,
    source: VertexId,
    persistent_source: bool,
    parameters: ContactParameters,
    infected: VertexBitset,
    /// `A_t` as an ascending list — the frontier the transmission loop iterates.
    frontier: Vec<VertexId>,
    /// Scratch for `A_{t+1}`; all-clear between steps.
    next_infected: VertexBitset,
    newly: Vec<VertexId>,
    round: usize,
}

impl<'g> ContactProcess<'g> {
    /// Creates a contact process started from `source`. When `persistent_source` is true the
    /// source never recovers (the BVDV scenario); otherwise the epidemic can go extinct.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsuitableGraph`] if the graph is empty or (for `n > 1`) has an
    /// isolated vertex — infection only travels along edges, so an isolated vertex can
    /// never be infected and every full-infection run would exhaust its budget — and the
    /// usual vertex validation errors.
    pub fn new(
        graph: &'g Graph,
        source: VertexId,
        parameters: ContactParameters,
        persistent_source: bool,
    ) -> Result<Self> {
        let n = graph.num_vertices();
        if n == 0 {
            return Err(CoreError::UnsuitableGraph { reason: "empty graph".to_string() });
        }
        if source >= n {
            return Err(CoreError::VertexOutOfRange { vertex: source, num_vertices: n });
        }
        if n > 1 {
            if let Some(isolated) = graph.vertices().find(|&v| graph.degree(v) == 0) {
                return Err(CoreError::UnsuitableGraph {
                    reason: format!("vertex {isolated} is isolated and can never be infected"),
                });
            }
        }
        let mut infected = VertexBitset::new(n);
        infected.insert(source);
        Ok(ContactProcess {
            graph,
            source,
            persistent_source,
            parameters,
            infected,
            frontier: vec![source],
            next_infected: VertexBitset::new(n),
            newly: vec![source],
            round: 0,
        })
    }

    /// Number of currently infected vertices.
    pub fn num_infected(&self) -> usize {
        self.frontier.len()
    }

    /// Whether the epidemic has died out (no infected vertices left).
    pub fn extinct(&self) -> bool {
        self.frontier.is_empty()
    }

    /// The process parameters.
    pub fn parameters(&self) -> ContactParameters {
        self.parameters
    }
}

impl SpreadingProcess for ContactProcess<'_> {
    // cobra-lint: hot
    // cobra-lint: draws(bounded)
    fn step_faulted(&mut self, rng: &mut dyn RngCore, faults: &StepFaults<'_>) {
        self.newly.clear();
        // An i.i.d.-dropped transmission composes into one Bernoulli draw with the
        // effective probability p(1-f) — per sender, so a targeted (frontier) drop lowers
        // only the targeted senders' rate; with no faults the stream is untouched.
        let transmit = self.parameters.infection_probability;
        // The frontier is ascending, so transmission/recovery draws happen in the dense
        // engine's vertex order and the RNG streams stay identical.
        for &u in &self.frontier {
            // A crashed vertex stays ill without infecting anyone (recovery still applies).
            if !faults.is_crashed(u) {
                let transmit = transmit * (1.0 - faults.sender_drop(u));
                for v in self.graph.neighbor_iter(u) {
                    // Per-edge channel loss folds into the per-neighbour Bernoulli too
                    // (the edge identity is known here); 1 - 0 with no bank active.
                    let transmit = transmit * (1.0 - faults.edge_drop_probability(u, v));
                    if !self.next_infected.contains(v)
                        && !faults.severs(u, v)
                        && transmit > 0.0
                        && rng.gen_bool(transmit)
                    {
                        self.next_infected.insert(v);
                        if !self.infected.contains(v) {
                            self.newly.push(v);
                        }
                    }
                }
            }
            // Recovery (skipped for the persistent source).
            let recovers = (!self.persistent_source || u != self.source)
                && self.parameters.recovery_probability > 0.0
                && rng.gen_bool(self.parameters.recovery_probability);
            if !recovers {
                // `u` was infected this round, so surviving is never a new activation.
                self.next_infected.insert(u);
            }
        }
        if self.persistent_source && self.next_infected.insert(self.source) {
            // Unreachable when the source started infected, but kept for state safety: a
            // re-pinned source that was healthy this round is a genuine activation.
            if !self.infected.contains(self.source) {
                self.newly.push(self.source);
            }
        }
        // Erase A_t through its own member list, swap, re-materialise the frontier.
        self.infected.clear_list(&self.frontier);
        std::mem::swap(&mut self.infected, &mut self.next_infected);
        self.frontier.clear();
        self.infected.collect_into(&mut self.frontier);
        self.round += 1;
    }

    // Stream mode: sender `u` draws one Bernoulli per neighbour plus its recovery from its
    // own `(vertex, round)` stream. The sequential engine's `next_infected.contains`
    // short-circuit (skipping draws for already-claimed targets) is deliberately absent —
    // it reads cross-sender state mid-round, which would make draw counts depend on the
    // schedule. Drawing every neighbour independently is distribution-identical (the
    // skipped draws were independent Bernoullis whose outcome could not matter) and makes
    // each sender's draw count a pure function of its degree.
    // cobra-lint: par
    // cobra-lint: draws(bounded)
    fn step_streams(&mut self, engine: &ParallelFrontier, faults: &StepFaults<'_>) -> Result<()> {
        self.newly.clear();
        let transmit = self.parameters.infection_probability;
        let recovery = self.parameters.recovery_probability;
        let graph = self.graph;
        let source = self.source;
        let persistent_source = self.persistent_source;
        let round = self.round as u64;
        let streams = engine.streams();
        // Each shard emits its inserts in sequential-scan order (per sender: infected
        // neighbours, then the sender's own survival), so the shard-order merge reproduces
        // one fixed insertion order at every thread count.
        let shards = engine.fan_out(&self.frontier, |_, chunk| {
            let mut inserts: Vec<VertexId> = Vec::new();
            for &u in chunk {
                let mut rng = streams.stream(u as u64, round);
                if !faults.is_crashed(u) {
                    let transmit = transmit * (1.0 - faults.sender_drop(u));
                    for v in graph.neighbor_iter(u) {
                        let transmit = transmit * (1.0 - faults.edge_drop_probability(u, v));
                        if !faults.severs(u, v) && transmit > 0.0 && rng.gen_bool(transmit) {
                            inserts.push(v);
                        }
                    }
                }
                let recovers =
                    (!persistent_source || u != source) && recovery > 0.0 && rng.gen_bool(recovery);
                if !recovers {
                    inserts.push(u);
                }
            }
            inserts
        });
        for w in shards.into_iter().flatten() {
            if self.next_infected.insert(w) && !self.infected.contains(w) {
                self.newly.push(w);
            }
        }
        if self.persistent_source
            && self.next_infected.insert(self.source)
            && !self.infected.contains(self.source)
        {
            self.newly.push(self.source);
        }
        self.infected.clear_list(&self.frontier);
        std::mem::swap(&mut self.infected, &mut self.next_infected);
        self.frontier.clear();
        self.infected.collect_into(&mut self.frontier);
        self.round += 1;
        Ok(())
    }

    fn supports_streams(&self) -> bool {
        true
    }

    fn round(&self) -> usize {
        self.round
    }

    fn active(&self) -> &VertexBitset {
        &self.infected
    }

    fn num_active(&self) -> usize {
        self.frontier.len()
    }

    fn newly_activated(&self) -> &[VertexId] {
        &self.newly
    }

    fn for_each_active(&self, f: &mut dyn FnMut(VertexId)) {
        for &v in &self.frontier {
            f(v);
        }
    }

    fn is_complete(&self) -> bool {
        self.frontier.len() == self.graph.num_vertices()
    }

    fn adopt_state(&mut self, active: &[VertexId], coverage: Option<&VertexBitset>) -> Result<()> {
        crate::process::validate_adopted_state(self.graph.num_vertices(), active, coverage)?;
        self.infected.clear_list(&self.frontier);
        self.frontier.clear();
        self.newly.clear();
        for &v in active {
            if self.infected.insert(v) {
                self.newly.push(v);
            }
        }
        if self.persistent_source && self.infected.insert(self.source) {
            self.newly.push(self.source);
        }
        self.infected.collect_into(&mut self.frontier);
        self.round = 0;
        Ok(())
    }

    fn reseed(&mut self, vertices: &[VertexId]) -> usize {
        // Re-infect the given vertices — the defense analogue of re-introducing the disease
        // into a recovered host. No branching lever exists here, so `reseed` is the only hook.
        let mut inserted = 0;
        for &v in vertices {
            if v < self.graph.num_vertices() && self.infected.insert(v) {
                self.newly.push(v);
                inserted += 1;
            }
        }
        if inserted > 0 {
            self.frontier.clear();
            self.infected.collect_into(&mut self.frontier);
        }
        inserted
    }

    fn reset(&mut self) {
        self.infected.clear_list(&self.frontier);
        self.frontier.clear();
        self.infected.insert(self.source);
        self.frontier.push(self.source);
        self.newly.clear();
        self.newly.push(self.source);
        self.round = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::run_until_complete;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn parameter_validation() {
        assert!(ContactParameters::new(0.5, 0.5).is_ok());
        assert!(ContactParameters::new(-0.1, 0.5).is_err());
        assert!(ContactParameters::new(0.5, 1.5).is_err());
        assert!(ContactParameters::new(f64::NAN, 0.5).is_err());
        let g = generators::cycle(5).unwrap();
        let params = ContactParameters::new(0.5, 0.5).unwrap();
        assert!(ContactProcess::new(&g, 9, params, true).is_err());
        assert!(ContactProcess::new(&cobra_graph::Graph::default(), 0, params, true).is_err());
    }

    #[test]
    fn isolated_vertices_are_rejected_like_the_other_processes() {
        // Regression: the contact process accepted graphs with isolated vertices and then
        // ran to its round budget on every trial (the infection can never reach them).
        let isolated = cobra_graph::Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let params = ContactParameters::new(0.5, 0.5).unwrap();
        let err = ContactProcess::new(&isolated, 0, params, true).unwrap_err();
        assert!(
            matches!(err, crate::CoreError::UnsuitableGraph { ref reason } if reason.contains("3")),
            "must name the isolated vertex: {err}"
        );
        // The single-vertex graph stays fine: its only vertex is the source.
        let singleton = cobra_graph::Graph::from_edges(1, &[]).unwrap();
        assert!(ContactProcess::new(&singleton, 0, params, true).is_ok());
    }

    #[test]
    fn persistent_source_never_recovers() {
        let g = generators::cycle(12).unwrap();
        let params = ContactParameters::new(0.2, 0.9).unwrap();
        let mut process = ContactProcess::new(&g, 5, params, true).unwrap();
        let mut r = rng(1);
        for _ in 0..100 {
            process.step(&mut r);
            assert!(process.active().contains(5), "persistent source must stay infected");
            assert!(!process.extinct());
        }
    }

    #[test]
    fn without_a_persistent_source_the_epidemic_can_die_out() {
        // High recovery, low transmission: extinction is essentially certain quickly.
        let g = generators::cycle(12).unwrap();
        let params = ContactParameters::new(0.05, 0.95).unwrap();
        let mut extinctions = 0;
        for seed in 0..20u64 {
            let mut process = ContactProcess::new(&g, 0, params, false).unwrap();
            let mut r = rng(seed);
            for _ in 0..200 {
                process.step(&mut r);
                if process.extinct() {
                    extinctions += 1;
                    break;
                }
            }
        }
        assert!(extinctions >= 15, "only {extinctions}/20 runs went extinct");
    }

    #[test]
    fn aggressive_parameters_infect_everything_with_a_persistent_source() {
        let g = generators::complete(32).unwrap();
        let params = ContactParameters::new(0.5, 0.2).unwrap();
        let mut process = ContactProcess::new(&g, 0, params, true).unwrap();
        let rounds = run_until_complete(&mut process, &mut rng(3), 100_000).unwrap();
        assert!(rounds < 100);
        assert!(process.is_complete());
    }

    #[test]
    fn frontier_stays_in_sync_with_the_bitset() {
        let g = generators::hypercube(5).unwrap();
        let params = ContactParameters::new(0.3, 0.4).unwrap();
        let mut process = ContactProcess::new(&g, 0, params, true).unwrap();
        let mut r = rng(8);
        for _ in 0..50 {
            process.step(&mut r);
            let mut listed = Vec::new();
            process.for_each_active(&mut |v| listed.push(v));
            assert_eq!(listed, process.active().iter().collect::<Vec<_>>());
            assert_eq!(process.num_infected(), process.active().count());
        }
    }

    #[test]
    fn zero_infection_probability_never_spreads() {
        let g = generators::complete(8).unwrap();
        let params = ContactParameters::new(0.0, 0.0).unwrap();
        let mut process = ContactProcess::new(&g, 0, params, true).unwrap();
        let mut r = rng(4);
        for _ in 0..20 {
            process.step(&mut r);
            assert_eq!(process.num_infected(), 1);
        }
        assert_eq!(process.parameters().infection_probability, 0.0);
    }

    #[test]
    fn reset_restores_the_source_only() {
        let g = generators::complete(16).unwrap();
        let params = ContactParameters::new(0.4, 0.3).unwrap();
        let mut process = ContactProcess::new(&g, 2, params, true).unwrap();
        let mut r = rng(5);
        for _ in 0..10 {
            process.step(&mut r);
        }
        process.reset();
        assert_eq!(process.num_infected(), 1);
        assert!(process.active().contains(2));
        assert_eq!(process.round(), 0);
        assert_eq!(process.newly_activated(), &[2]);
    }
}
