//! A discrete-time SIS contact process with an optional persistent source.
//!
//! The paper notes that COBRA/BIPS is a discrete cousin of Harris' contact process: infected
//! vertices infect each neighbour at rate `µ` and recover at rate 1. The discrete-time
//! approximation here proceeds in rounds: an infected vertex infects each neighbour
//! independently with probability `infection_probability`, and then recovers with probability
//! `recovery_probability` (unless it is the persistent source, mirroring the BVDV
//! "persistently infected animal" scenario the paper cites). Unlike BIPS, the process can die
//! out when no source is pinned — which is exactly the behaviour the experiments contrast.

use cobra_graph::{Graph, VertexId};
use rand::{Rng, RngCore};

use crate::process::SpreadingProcess;
use crate::{CoreError, Result};

/// Parameters of the discrete SIS contact process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactParameters {
    /// Probability that an infected vertex transmits to a given neighbour in one round.
    pub infection_probability: f64,
    /// Probability that an infected vertex recovers at the end of a round.
    pub recovery_probability: f64,
}

impl ContactParameters {
    /// Validated constructor.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if either probability is outside `[0, 1]`.
    pub fn new(infection_probability: f64, recovery_probability: f64) -> Result<Self> {
        for (name, p) in [("infection", infection_probability), ("recovery", recovery_probability)]
        {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(CoreError::InvalidParameters {
                    reason: format!("{name} probability {p} must be in [0, 1]"),
                });
            }
        }
        Ok(ContactParameters { infection_probability, recovery_probability })
    }
}

/// A running discrete SIS contact process.
#[derive(Debug, Clone)]
pub struct ContactProcess<'g> {
    graph: &'g Graph,
    source: VertexId,
    persistent_source: bool,
    parameters: ContactParameters,
    infected: Vec<bool>,
    next_infected: Vec<bool>,
    num_infected: usize,
    round: usize,
}

impl<'g> ContactProcess<'g> {
    /// Creates a contact process started from `source`. When `persistent_source` is true the
    /// source never recovers (the BVDV scenario); otherwise the epidemic can go extinct.
    ///
    /// # Errors
    ///
    /// Returns the usual graph/vertex validation errors.
    pub fn new(
        graph: &'g Graph,
        source: VertexId,
        parameters: ContactParameters,
        persistent_source: bool,
    ) -> Result<Self> {
        let n = graph.num_vertices();
        if n == 0 {
            return Err(CoreError::UnsuitableGraph { reason: "empty graph".to_string() });
        }
        if source >= n {
            return Err(CoreError::VertexOutOfRange { vertex: source, num_vertices: n });
        }
        let mut infected = vec![false; n];
        infected[source] = true;
        Ok(ContactProcess {
            graph,
            source,
            persistent_source,
            parameters,
            infected,
            next_infected: vec![false; n],
            num_infected: 1,
            round: 0,
        })
    }

    /// Number of currently infected vertices.
    pub fn num_infected(&self) -> usize {
        self.num_infected
    }

    /// Whether the epidemic has died out (no infected vertices left).
    pub fn extinct(&self) -> bool {
        self.num_infected == 0
    }

    /// The process parameters.
    pub fn parameters(&self) -> ContactParameters {
        self.parameters
    }
}

impl SpreadingProcess for ContactProcess<'_> {
    fn step(&mut self, rng: &mut dyn RngCore) {
        let n = self.graph.num_vertices();
        self.next_infected[..n].fill(false);
        let mut count = 0usize;
        // Transmission.
        for u in 0..n {
            if !self.infected[u] {
                continue;
            }
            for v in self.graph.neighbor_iter(u) {
                if !self.next_infected[v]
                    && self.parameters.infection_probability > 0.0
                    && rng.gen_bool(self.parameters.infection_probability)
                {
                    self.next_infected[v] = true;
                    count += 1;
                }
            }
            // Recovery (skipped for the persistent source).
            let recovers = (!self.persistent_source || u != self.source)
                && self.parameters.recovery_probability > 0.0
                && rng.gen_bool(self.parameters.recovery_probability);
            if !recovers && !self.next_infected[u] {
                self.next_infected[u] = true;
                count += 1;
            }
        }
        if self.persistent_source && !self.next_infected[self.source] {
            self.next_infected[self.source] = true;
            count += 1;
        }
        std::mem::swap(&mut self.infected, &mut self.next_infected);
        self.num_infected = count;
        self.round += 1;
    }

    fn round(&self) -> usize {
        self.round
    }

    fn active(&self) -> &[bool] {
        &self.infected
    }

    fn num_active(&self) -> usize {
        self.num_infected
    }

    fn is_complete(&self) -> bool {
        self.num_infected == self.graph.num_vertices()
    }

    fn reset(&mut self) {
        self.infected.fill(false);
        self.next_infected.fill(false);
        self.infected[self.source] = true;
        self.num_infected = 1;
        self.round = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::run_until_complete;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn parameter_validation() {
        assert!(ContactParameters::new(0.5, 0.5).is_ok());
        assert!(ContactParameters::new(-0.1, 0.5).is_err());
        assert!(ContactParameters::new(0.5, 1.5).is_err());
        assert!(ContactParameters::new(f64::NAN, 0.5).is_err());
        let g = generators::cycle(5).unwrap();
        let params = ContactParameters::new(0.5, 0.5).unwrap();
        assert!(ContactProcess::new(&g, 9, params, true).is_err());
        assert!(ContactProcess::new(&cobra_graph::Graph::default(), 0, params, true).is_err());
    }

    #[test]
    fn persistent_source_never_recovers() {
        let g = generators::cycle(12).unwrap();
        let params = ContactParameters::new(0.2, 0.9).unwrap();
        let mut process = ContactProcess::new(&g, 5, params, true).unwrap();
        let mut r = rng(1);
        for _ in 0..100 {
            process.step(&mut r);
            assert!(process.active()[5], "persistent source must stay infected");
            assert!(!process.extinct());
        }
    }

    #[test]
    fn without_a_persistent_source_the_epidemic_can_die_out() {
        // High recovery, low transmission: extinction is essentially certain quickly.
        let g = generators::cycle(12).unwrap();
        let params = ContactParameters::new(0.05, 0.95).unwrap();
        let mut extinctions = 0;
        for seed in 0..20u64 {
            let mut process = ContactProcess::new(&g, 0, params, false).unwrap();
            let mut r = rng(seed);
            for _ in 0..200 {
                process.step(&mut r);
                if process.extinct() {
                    extinctions += 1;
                    break;
                }
            }
        }
        assert!(extinctions >= 15, "only {extinctions}/20 runs went extinct");
    }

    #[test]
    fn aggressive_parameters_infect_everything_with_a_persistent_source() {
        let g = generators::complete(32).unwrap();
        let params = ContactParameters::new(0.5, 0.2).unwrap();
        let mut process = ContactProcess::new(&g, 0, params, true).unwrap();
        let rounds = run_until_complete(&mut process, &mut rng(3), 100_000).unwrap();
        assert!(rounds < 100);
        assert!(process.is_complete());
    }

    #[test]
    fn zero_infection_probability_never_spreads() {
        let g = generators::complete(8).unwrap();
        let params = ContactParameters::new(0.0, 0.0).unwrap();
        let mut process = ContactProcess::new(&g, 0, params, true).unwrap();
        let mut r = rng(4);
        for _ in 0..20 {
            process.step(&mut r);
            assert_eq!(process.num_infected(), 1);
        }
        assert_eq!(process.parameters().infection_probability, 0.0);
    }

    #[test]
    fn reset_restores_the_source_only() {
        let g = generators::complete(16).unwrap();
        let params = ContactParameters::new(0.4, 0.3).unwrap();
        let mut process = ContactProcess::new(&g, 2, params, true).unwrap();
        let mut r = rng(5);
        for _ in 0..10 {
            process.step(&mut r);
        }
        process.reset();
        assert_eq!(process.num_infected(), 1);
        assert!(process.active()[2]);
        assert_eq!(process.round(), 0);
    }
}
