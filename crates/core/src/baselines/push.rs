//! The PUSH and PUSH–PULL rumour-spreading protocols.
//!
//! PUSH is the "simplest model of information propagation" the paper's abstract refers to:
//! every *informed* vertex pushes the rumour to one uniformly random neighbour each round and
//! stays informed forever. It spreads in `O(log n)` rounds on good expanders but its
//! per-round transmission count grows to `n` (every informed vertex keeps sending), whereas
//! COBRA caps transmissions at `k` per *active* vertex and lets vertices go quiet — the
//! trade-off the paper is about. PUSH–PULL additionally lets uninformed vertices pull from a
//! random neighbour.

use cobra_graph::{Graph, VertexId};
use rand::{Rng, RngCore};

use crate::process::SpreadingProcess;
use crate::{CoreError, Result};

fn validate(graph: &Graph, start: VertexId) -> Result<()> {
    let n = graph.num_vertices();
    if n == 0 {
        return Err(CoreError::UnsuitableGraph { reason: "empty graph".to_string() });
    }
    if start >= n {
        return Err(CoreError::VertexOutOfRange { vertex: start, num_vertices: n });
    }
    if n > 1 {
        if let Some(isolated) = graph.vertices().find(|&v| graph.degree(v) == 0) {
            return Err(CoreError::UnsuitableGraph {
                reason: format!("vertex {isolated} is isolated and can never be informed"),
            });
        }
    }
    Ok(())
}

/// The classical PUSH protocol.
#[derive(Debug, Clone)]
pub struct PushProcess<'g> {
    graph: &'g Graph,
    start: VertexId,
    informed: Vec<bool>,
    num_informed: usize,
    round: usize,
    messages_sent: u64,
}

impl<'g> PushProcess<'g> {
    /// Creates a PUSH process with a single initially informed vertex.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VertexOutOfRange`] / [`CoreError::UnsuitableGraph`] as for the
    /// other processes.
    pub fn new(graph: &'g Graph, start: VertexId) -> Result<Self> {
        validate(graph, start)?;
        let mut informed = vec![false; graph.num_vertices()];
        informed[start] = true;
        Ok(PushProcess { graph, start, informed, num_informed: 1, round: 0, messages_sent: 0 })
    }

    /// Number of informed vertices.
    pub fn num_informed(&self) -> usize {
        self.num_informed
    }

    /// Total messages sent so far — the communication-cost metric compared against COBRA.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

impl SpreadingProcess for PushProcess<'_> {
    fn step(&mut self, rng: &mut dyn RngCore) {
        let n = self.graph.num_vertices();
        let mut newly = Vec::new();
        for u in 0..n {
            if !self.informed[u] {
                continue;
            }
            let degree = self.graph.degree(u);
            if degree == 0 {
                continue;
            }
            self.messages_sent += 1;
            let target = self.graph.neighbor(u, rng.gen_range(0..degree));
            if !self.informed[target] {
                newly.push(target);
            }
        }
        for v in newly {
            if !self.informed[v] {
                self.informed[v] = true;
                self.num_informed += 1;
            }
        }
        self.round += 1;
    }

    fn round(&self) -> usize {
        self.round
    }

    fn active(&self) -> &[bool] {
        &self.informed
    }

    fn num_active(&self) -> usize {
        self.num_informed
    }

    fn is_complete(&self) -> bool {
        self.num_informed == self.graph.num_vertices()
    }

    fn reset(&mut self) {
        self.informed.fill(false);
        self.informed[self.start] = true;
        self.num_informed = 1;
        self.round = 0;
        self.messages_sent = 0;
    }
}

/// The PUSH–PULL protocol: informed vertices push and uninformed vertices pull, both to one
/// uniformly random neighbour per round.
#[derive(Debug, Clone)]
pub struct PushPullProcess<'g> {
    graph: &'g Graph,
    start: VertexId,
    informed: Vec<bool>,
    num_informed: usize,
    round: usize,
    messages_sent: u64,
}

impl<'g> PushPullProcess<'g> {
    /// Creates a PUSH–PULL process with a single initially informed vertex.
    ///
    /// # Errors
    ///
    /// Same as [`PushProcess::new`].
    pub fn new(graph: &'g Graph, start: VertexId) -> Result<Self> {
        validate(graph, start)?;
        let mut informed = vec![false; graph.num_vertices()];
        informed[start] = true;
        Ok(PushPullProcess { graph, start, informed, num_informed: 1, round: 0, messages_sent: 0 })
    }

    /// Number of informed vertices.
    pub fn num_informed(&self) -> usize {
        self.num_informed
    }

    /// Total messages (push and pull requests) sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

impl SpreadingProcess for PushPullProcess<'_> {
    fn step(&mut self, rng: &mut dyn RngCore) {
        let n = self.graph.num_vertices();
        let mut newly = Vec::new();
        for u in 0..n {
            let degree = self.graph.degree(u);
            if degree == 0 {
                continue;
            }
            self.messages_sent += 1;
            let partner = self.graph.neighbor(u, rng.gen_range(0..degree));
            if self.informed[u] && !self.informed[partner] {
                newly.push(partner);
            } else if !self.informed[u] && self.informed[partner] {
                newly.push(u);
            }
        }
        for v in newly {
            if !self.informed[v] {
                self.informed[v] = true;
                self.num_informed += 1;
            }
        }
        self.round += 1;
    }

    fn round(&self) -> usize {
        self.round
    }

    fn active(&self) -> &[bool] {
        &self.informed
    }

    fn num_active(&self) -> usize {
        self.num_informed
    }

    fn is_complete(&self) -> bool {
        self.num_informed == self.graph.num_vertices()
    }

    fn reset(&mut self) {
        self.informed.fill(false);
        self.informed[self.start] = true;
        self.num_informed = 1;
        self.round = 0;
        self.messages_sent = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::run_until_complete;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates() {
        let g = generators::cycle(4).unwrap();
        assert!(PushProcess::new(&g, 9).is_err());
        assert!(PushPullProcess::new(&g, 9).is_err());
        assert!(PushProcess::new(&cobra_graph::Graph::default(), 0).is_err());
    }

    #[test]
    fn informed_set_is_monotone_and_completes_on_expanders() {
        let g = generators::complete(128).unwrap();
        let mut push = PushProcess::new(&g, 0).unwrap();
        let mut r = rng(1);
        let mut previous = 1usize;
        while !push.is_complete() {
            push.step(&mut r);
            assert!(push.num_informed() >= previous, "PUSH never forgets");
            assert!(push.num_informed() <= 2 * previous, "PUSH at most doubles per round");
            previous = push.num_informed();
            assert!(push.round() < 1000, "PUSH must finish quickly on K_n");
        }
        assert!(push.round() < 60);
        assert!(push.messages_sent() > 0);
    }

    #[test]
    fn push_pull_is_at_least_as_fast_as_push_on_average() {
        let g = generators::connected_random_regular(256, 3, &mut rng(2)).unwrap();
        let mut push_total = 0usize;
        let mut pushpull_total = 0usize;
        for seed in 0..5u64 {
            let mut push = PushProcess::new(&g, 0).unwrap();
            push_total += run_until_complete(&mut push, &mut rng(100 + seed), 100_000).unwrap();
            let mut pp = PushPullProcess::new(&g, 0).unwrap();
            pushpull_total += run_until_complete(&mut pp, &mut rng(200 + seed), 100_000).unwrap();
        }
        assert!(
            pushpull_total <= push_total,
            "PUSH-PULL ({pushpull_total}) should not be slower than PUSH ({push_total})"
        );
    }

    #[test]
    fn push_message_count_grows_with_the_informed_set() {
        let g = generators::complete(64).unwrap();
        let mut push = PushProcess::new(&g, 0).unwrap();
        let mut r = rng(3);
        run_until_complete(&mut push, &mut r, 10_000).unwrap();
        // Every informed vertex sends one message per round, so the total exceeds the number
        // of rounds (which only a single-sender protocol would match).
        assert!(push.messages_sent() as usize > push.round());
    }

    #[test]
    fn reset_works_for_both_protocols() {
        let g = generators::petersen().unwrap();
        let mut r = rng(4);
        let mut push = PushProcess::new(&g, 2).unwrap();
        run_until_complete(&mut push, &mut r, 10_000).unwrap();
        push.reset();
        assert_eq!(push.num_informed(), 1);
        assert_eq!(push.messages_sent(), 0);
        let mut pp = PushPullProcess::new(&g, 2).unwrap();
        run_until_complete(&mut pp, &mut r, 10_000).unwrap();
        pp.reset();
        assert_eq!(pp.num_informed(), 1);
        assert_eq!(pp.round(), 0);
    }
}
