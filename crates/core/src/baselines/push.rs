//! The PUSH and PUSH–PULL rumour-spreading protocols.
//!
//! PUSH is the "simplest model of information propagation" the paper's abstract refers to:
//! every *informed* vertex pushes the rumour to one uniformly random neighbour each round and
//! stays informed forever. It spreads in `O(log n)` rounds on good expanders but its
//! per-round transmission count grows to `n` (every informed vertex keeps sending), whereas
//! COBRA caps transmissions at `k` per *active* vertex and lets vertices go quiet — the
//! trade-off the paper is about. PUSH–PULL additionally lets uninformed vertices pull from a
//! random neighbour.
//!
//! Both processes reuse scratch buffers across rounds (no per-round allocation) and iterate
//! an explicit informed list: a PUSH round costs `O(|informed| + n/64)`, not `O(n)`.
//! PUSH–PULL inherently scans all `n` vertices (uninformed vertices pull too — that is the
//! protocol), but its delta/list bookkeeping keeps observers `O(|delta|)`.

use cobra_graph::{sample, Graph, VertexBitset, VertexId};
use rand::RngCore;

use crate::fault::StepFaults;
use crate::parallel::ParallelFrontier;
use crate::process::SpreadingProcess;
use crate::{CoreError, Result};

fn validate(graph: &Graph, start: VertexId) -> Result<()> {
    let n = graph.num_vertices();
    if n == 0 {
        return Err(CoreError::UnsuitableGraph { reason: "empty graph".to_string() });
    }
    if start >= n {
        return Err(CoreError::VertexOutOfRange { vertex: start, num_vertices: n });
    }
    if n > 1 {
        if let Some(isolated) = graph.vertices().find(|&v| graph.degree(v) == 0) {
            return Err(CoreError::UnsuitableGraph {
                reason: format!("vertex {isolated} is isolated and can never be informed"),
            });
        }
    }
    Ok(())
}

/// The classical PUSH protocol.
#[derive(Debug, Clone)]
pub struct PushProcess<'g> {
    graph: &'g Graph,
    start: VertexId,
    informed: VertexBitset,
    /// The informed set as an ascending list — the frontier every round iterates.
    informed_list: Vec<VertexId>,
    /// Vertices informed by the last step (scratch reused across rounds).
    newly: Vec<VertexId>,
    round: usize,
    messages_sent: u64,
}

impl<'g> PushProcess<'g> {
    /// Creates a PUSH process with a single initially informed vertex.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VertexOutOfRange`] / [`CoreError::UnsuitableGraph`] as for the
    /// other processes.
    pub fn new(graph: &'g Graph, start: VertexId) -> Result<Self> {
        validate(graph, start)?;
        let mut informed = VertexBitset::new(graph.num_vertices());
        informed.insert(start);
        Ok(PushProcess {
            graph,
            start,
            informed,
            informed_list: vec![start],
            newly: vec![start],
            round: 0,
            messages_sent: 0,
        })
    }

    /// Number of informed vertices.
    pub fn num_informed(&self) -> usize {
        self.informed_list.len()
    }

    /// Total messages sent so far — the communication-cost metric compared against COBRA.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

impl SpreadingProcess for PushProcess<'_> {
    // cobra-lint: hot
    // cobra-lint: draws(bounded)
    fn step_faulted(&mut self, rng: &mut dyn RngCore, faults: &StepFaults<'_>) {
        self.newly.clear();
        // The informed set is monotone, so targets can be marked immediately: no push
        // decision in this round depends on the informed state, and marking eagerly
        // deduplicates `newly` for free (the dense engine's deferred application with its
        // double `!informed` check produces the identical set).
        for &u in &self.informed_list {
            // A crashed vertex knows the rumour but never sends it.
            if faults.is_crashed(u) {
                continue;
            }
            let neighbors = self.graph.neighbors(u);
            if neighbors.is_empty() {
                continue;
            }
            self.messages_sent += 1;
            // The message is sent (and counted) but lost in flight.
            if faults.drops_from(rng, u) {
                continue;
            }
            let target =
                *sample::sample_slice(neighbors, rng).expect("neighbour slice is non-empty");
            // A severed cut blocks the (sent and counted) message after the target draw;
            // a per-edge channel may then lose it on the chosen link.
            if faults.severs(u, target) || faults.drops_on_edge(rng, u, target) {
                continue;
            }
            if self.informed.insert(target) {
                self.newly.push(target);
            }
        }
        if !self.newly.is_empty() {
            self.informed_list.clear();
            self.informed.collect_into(&mut self.informed_list);
        }
        self.round += 1;
    }

    // Stream mode: each informed sender's drop and target draws come from its own
    // `(vertex, round)` stream; shard merges preserve sender-ascending order.
    // cobra-lint: par
    // cobra-lint: draws(bounded)
    fn step_streams(&mut self, engine: &ParallelFrontier, faults: &StepFaults<'_>) -> Result<()> {
        self.newly.clear();
        let graph = self.graph;
        let round = self.round as u64;
        let streams = engine.streams();
        let shards = engine.fan_out(&self.informed_list, |_, chunk| {
            let mut targets: Vec<VertexId> = Vec::new();
            let mut messages = 0u64;
            for &u in chunk {
                if faults.is_crashed(u) {
                    continue;
                }
                let neighbors = graph.neighbors(u);
                if neighbors.is_empty() {
                    continue;
                }
                messages += 1;
                let mut rng = streams.stream(u as u64, round);
                if faults.drops_from(&mut rng, u) {
                    continue;
                }
                let target = *sample::sample_slice(neighbors, &mut rng)
                    .expect("neighbour slice is non-empty");
                if faults.severs(u, target) || faults.drops_on_edge(&mut rng, u, target) {
                    continue;
                }
                targets.push(target);
            }
            (targets, messages)
        });
        for (targets, messages) in shards {
            self.messages_sent += messages;
            for target in targets {
                if self.informed.insert(target) {
                    self.newly.push(target);
                }
            }
        }
        if !self.newly.is_empty() {
            self.informed_list.clear();
            self.informed.collect_into(&mut self.informed_list);
        }
        self.round += 1;
        Ok(())
    }

    fn supports_streams(&self) -> bool {
        true
    }

    fn round(&self) -> usize {
        self.round
    }

    fn active(&self) -> &VertexBitset {
        &self.informed
    }

    fn num_active(&self) -> usize {
        self.informed_list.len()
    }

    fn newly_activated(&self) -> &[VertexId] {
        &self.newly
    }

    fn for_each_active(&self, f: &mut dyn FnMut(VertexId)) {
        for &v in &self.informed_list {
            f(v);
        }
    }

    fn is_complete(&self) -> bool {
        self.informed_list.len() == self.graph.num_vertices()
    }

    fn adopt_state(&mut self, active: &[VertexId], coverage: Option<&VertexBitset>) -> Result<()> {
        crate::process::validate_adopted_state(self.graph.num_vertices(), active, coverage)?;
        self.informed.clear_list(&self.informed_list);
        self.informed_list.clear();
        self.newly.clear();
        for &v in active {
            if self.informed.insert(v) {
                self.newly.push(v);
            }
        }
        self.informed.collect_into(&mut self.informed_list);
        self.round = 0;
        Ok(())
    }

    fn reseed(&mut self, vertices: &[VertexId]) -> usize {
        // The informed set is monotone and *is* the coverage, so re-seeding covered vertices
        // is naturally a no-op; only genuinely uninformed vertices change state.
        let mut inserted = 0;
        for &v in vertices {
            if v < self.graph.num_vertices() && self.informed.insert(v) {
                self.newly.push(v);
                inserted += 1;
            }
        }
        if inserted > 0 {
            self.informed_list.clear();
            self.informed.collect_into(&mut self.informed_list);
        }
        inserted
    }

    fn reset(&mut self) {
        self.informed.clear_list(&self.informed_list);
        self.informed_list.clear();
        self.informed.insert(self.start);
        self.informed_list.push(self.start);
        self.newly.clear();
        self.newly.push(self.start);
        self.round = 0;
        self.messages_sent = 0;
    }
}

/// The PUSH–PULL protocol: informed vertices push and uninformed vertices pull, both to one
/// uniformly random neighbour per round.
#[derive(Debug, Clone)]
pub struct PushPullProcess<'g> {
    graph: &'g Graph,
    start: VertexId,
    informed: VertexBitset,
    informed_list: Vec<VertexId>,
    /// Contact candidates of the current round (may contain duplicates; scratch reused).
    contacts: Vec<VertexId>,
    newly: Vec<VertexId>,
    round: usize,
    messages_sent: u64,
}

impl<'g> PushPullProcess<'g> {
    /// Creates a PUSH–PULL process with a single initially informed vertex.
    ///
    /// # Errors
    ///
    /// Same as [`PushProcess::new`].
    pub fn new(graph: &'g Graph, start: VertexId) -> Result<Self> {
        validate(graph, start)?;
        let mut informed = VertexBitset::new(graph.num_vertices());
        informed.insert(start);
        Ok(PushPullProcess {
            graph,
            start,
            informed,
            informed_list: vec![start],
            contacts: Vec::new(),
            newly: vec![start],
            round: 0,
            messages_sent: 0,
        })
    }

    /// Number of informed vertices.
    pub fn num_informed(&self) -> usize {
        self.informed_list.len()
    }

    /// Total messages (push and pull requests) sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

impl SpreadingProcess for PushPullProcess<'_> {
    // cobra-lint: hot
    // cobra-lint: draws(bounded)
    fn step_faulted(&mut self, rng: &mut dyn RngCore, faults: &StepFaults<'_>) {
        let n = self.graph.num_vertices();
        // Every vertex contacts a partner based on the *start-of-round* informed state, so
        // application must be deferred — collect candidates first, then mark.
        self.contacts.clear();
        for u in 0..n {
            let neighbors = self.graph.neighbors(u);
            if neighbors.is_empty() {
                continue;
            }
            self.messages_sent += 1;
            let partner =
                *sample::sample_slice(neighbors, rng).expect("neighbour slice is non-empty");
            // Crash disables transmission only: a crashed vertex neither pushes the rumour
            // nor answers a pull, but it can still receive and still request. A severed
            // cut blocks the contact in both directions before any drop draw.
            if self.informed.contains(u) && !self.informed.contains(partner) {
                if !faults.is_crashed(u)
                    && !faults.severs(u, partner)
                    && !faults.drops_from(rng, u)
                    && !faults.drops_on_edge(rng, u, partner)
                {
                    self.contacts.push(partner);
                }
            } else if !self.informed.contains(u)
                && self.informed.contains(partner)
                && !faults.is_crashed(partner)
                && !faults.severs(partner, u)
                && !faults.drops_from(rng, partner)
                && !faults.drops_on_edge(rng, partner, u)
            {
                self.contacts.push(u);
            }
        }
        self.newly.clear();
        for &v in &self.contacts {
            if self.informed.insert(v) {
                self.newly.push(v);
            }
        }
        if !self.newly.is_empty() {
            self.informed_list.clear();
            self.informed.collect_into(&mut self.informed_list);
        }
        self.round += 1;
    }

    // Stream mode: vertex `u` initiates both its push and its pull request, so its partner
    // draw and the drop draw of either direction come from `u`'s `(vertex, round)` stream;
    // the deferred contact application keeps the start-of-round semantics.
    // cobra-lint: par
    // cobra-lint: draws(bounded)
    fn step_streams(&mut self, engine: &ParallelFrontier, faults: &StepFaults<'_>) -> Result<()> {
        let n = self.graph.num_vertices();
        self.contacts.clear();
        let graph = self.graph;
        let round = self.round as u64;
        let streams = engine.streams();
        let informed = &self.informed;
        let shards = engine.fan_out_ranges(n, |range| {
            let mut contacts: Vec<VertexId> = Vec::new();
            let mut messages = 0u64;
            for u in range {
                let neighbors = graph.neighbors(u);
                if neighbors.is_empty() {
                    continue;
                }
                messages += 1;
                let mut rng = streams.stream(u as u64, round);
                let partner = *sample::sample_slice(neighbors, &mut rng)
                    .expect("neighbour slice is non-empty");
                if informed.contains(u) && !informed.contains(partner) {
                    if !faults.is_crashed(u)
                        && !faults.severs(u, partner)
                        && !faults.drops_from(&mut rng, u)
                        && !faults.drops_on_edge(&mut rng, u, partner)
                    {
                        contacts.push(partner);
                    }
                } else if !informed.contains(u)
                    && informed.contains(partner)
                    && !faults.is_crashed(partner)
                    && !faults.severs(partner, u)
                    && !faults.drops_from(&mut rng, partner)
                    && !faults.drops_on_edge(&mut rng, partner, u)
                {
                    contacts.push(u);
                }
            }
            (contacts, messages)
        });
        self.newly.clear();
        for (contacts, messages) in shards {
            self.messages_sent += messages;
            for v in contacts {
                if self.informed.insert(v) {
                    self.newly.push(v);
                }
            }
        }
        if !self.newly.is_empty() {
            self.informed_list.clear();
            self.informed.collect_into(&mut self.informed_list);
        }
        self.round += 1;
        Ok(())
    }

    fn supports_streams(&self) -> bool {
        true
    }

    fn round(&self) -> usize {
        self.round
    }

    fn active(&self) -> &VertexBitset {
        &self.informed
    }

    fn num_active(&self) -> usize {
        self.informed_list.len()
    }

    fn newly_activated(&self) -> &[VertexId] {
        &self.newly
    }

    fn for_each_active(&self, f: &mut dyn FnMut(VertexId)) {
        for &v in &self.informed_list {
            f(v);
        }
    }

    fn is_complete(&self) -> bool {
        self.informed_list.len() == self.graph.num_vertices()
    }

    fn adopt_state(&mut self, active: &[VertexId], coverage: Option<&VertexBitset>) -> Result<()> {
        crate::process::validate_adopted_state(self.graph.num_vertices(), active, coverage)?;
        self.informed.clear_list(&self.informed_list);
        self.informed_list.clear();
        self.newly.clear();
        for &v in active {
            if self.informed.insert(v) {
                self.newly.push(v);
            }
        }
        self.informed.collect_into(&mut self.informed_list);
        self.round = 0;
        Ok(())
    }

    fn reseed(&mut self, vertices: &[VertexId]) -> usize {
        let mut inserted = 0;
        for &v in vertices {
            if v < self.graph.num_vertices() && self.informed.insert(v) {
                self.newly.push(v);
                inserted += 1;
            }
        }
        if inserted > 0 {
            self.informed_list.clear();
            self.informed.collect_into(&mut self.informed_list);
        }
        inserted
    }

    fn reset(&mut self) {
        self.informed.clear_list(&self.informed_list);
        self.informed_list.clear();
        self.informed.insert(self.start);
        self.informed_list.push(self.start);
        self.newly.clear();
        self.newly.push(self.start);
        self.round = 0;
        self.messages_sent = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::run_until_complete;
    use cobra_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn construction_validates() {
        let g = generators::cycle(4).unwrap();
        assert!(PushProcess::new(&g, 9).is_err());
        assert!(PushPullProcess::new(&g, 9).is_err());
        assert!(PushProcess::new(&cobra_graph::Graph::default(), 0).is_err());
    }

    #[test]
    fn informed_set_is_monotone_and_completes_on_expanders() {
        let g = generators::complete(128).unwrap();
        let mut push = PushProcess::new(&g, 0).unwrap();
        let mut r = rng(1);
        let mut previous = 1usize;
        while !push.is_complete() {
            push.step(&mut r);
            assert!(push.num_informed() >= previous, "PUSH never forgets");
            assert!(push.num_informed() <= 2 * previous, "PUSH at most doubles per round");
            assert_eq!(push.num_informed(), previous + push.newly_activated().len());
            previous = push.num_informed();
            assert!(push.round() < 1000, "PUSH must finish quickly on K_n");
        }
        assert!(push.round() < 60);
        assert!(push.messages_sent() > 0);
    }

    #[test]
    fn informed_list_stays_in_sync_with_the_bitset() {
        let g = generators::hypercube(5).unwrap();
        let mut push = PushProcess::new(&g, 7).unwrap();
        let mut r = rng(9);
        for _ in 0..20 {
            push.step(&mut r);
            let mut listed = Vec::new();
            push.for_each_active(&mut |v| listed.push(v));
            assert_eq!(listed, push.active().iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn push_pull_is_at_least_as_fast_as_push_on_average() {
        let g = generators::connected_random_regular(256, 3, &mut rng(2)).unwrap();
        let mut push_total = 0usize;
        let mut pushpull_total = 0usize;
        for seed in 0..5u64 {
            let mut push = PushProcess::new(&g, 0).unwrap();
            push_total += run_until_complete(&mut push, &mut rng(100 + seed), 100_000).unwrap();
            let mut pp = PushPullProcess::new(&g, 0).unwrap();
            pushpull_total += run_until_complete(&mut pp, &mut rng(200 + seed), 100_000).unwrap();
        }
        assert!(
            pushpull_total <= push_total,
            "PUSH-PULL ({pushpull_total}) should not be slower than PUSH ({push_total})"
        );
    }

    #[test]
    fn push_message_count_grows_with_the_informed_set() {
        let g = generators::complete(64).unwrap();
        let mut push = PushProcess::new(&g, 0).unwrap();
        let mut r = rng(3);
        run_until_complete(&mut push, &mut r, 10_000).unwrap();
        // Every informed vertex sends one message per round, so the total exceeds the number
        // of rounds (which only a single-sender protocol would match).
        assert!(push.messages_sent() as usize > push.round());
    }

    #[test]
    fn reset_works_for_both_protocols() {
        let g = generators::petersen().unwrap();
        let mut r = rng(4);
        let mut push = PushProcess::new(&g, 2).unwrap();
        run_until_complete(&mut push, &mut r, 10_000).unwrap();
        push.reset();
        assert_eq!(push.num_informed(), 1);
        assert_eq!(push.messages_sent(), 0);
        assert_eq!(push.newly_activated(), &[2]);
        let mut pp = PushPullProcess::new(&g, 2).unwrap();
        run_until_complete(&mut pp, &mut r, 10_000).unwrap();
        pp.reset();
        assert_eq!(pp.num_informed(), 1);
        assert_eq!(pp.round(), 0);
    }
}
