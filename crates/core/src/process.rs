//! The common interface of round-based spreading processes.

use cobra_graph::{VertexBitset, VertexId};
use rand::RngCore;

use crate::fault::StepFaults;
use crate::parallel::ParallelFrontier;
use crate::{CoreError, Result};

/// A synchronous, round-based process spreading information (or infection) over a fixed graph.
///
/// All the processes in this workspace — COBRA, BIPS, PUSH, PUSH–PULL, random walks, the
/// contact process — advance in discrete rounds over an immutable graph, maintain a set of
/// "currently active" vertices and have a notion of completion (all vertices visited, or all
/// vertices infected). This trait captures exactly that surface so measurement code
/// ([`run_until_complete`], growth traces, the [`sim`](crate::sim) runner, the experiment
/// harness) is written once.
///
/// # Sparse-frontier contract
///
/// The trait is designed so that *observing* a process costs work proportional to what the
/// process actually did, never `O(n)` per round:
///
/// * [`active`](SpreadingProcess::active) exposes the current active set as a word-level
///   [`VertexBitset`] — membership tests are `O(1)` and full iteration is
///   `O(n/64 + |active|)`;
/// * [`newly_activated`](SpreadingProcess::newly_activated) is the per-round **delta**
///   `A_t \ A_{t-1}`: observers that track first visits or cumulative coverage consume it in
///   `O(|delta|)`;
/// * [`num_active`](SpreadingProcess::num_active) stays an `O(1)` cached counter.
///
/// Implementations in this crate also keep their *stepping* cost proportional to the frontier
/// (`O(|A_t| · k)` per round for the push-style processes) by iterating explicit frontier
/// vectors and erasing scratch bitsets through dirty lists instead of `fill(false)`.
///
/// The trait is **object-safe**: processes are routinely handled as
/// `Box<dyn SpreadingProcess>` so heterogeneous collections can be driven through the same
/// loop and a [`ProcessSpec`](crate::spec::ProcessSpec) can instantiate any process by name
/// at runtime. That is why [`step`](SpreadingProcess::step) takes `&mut dyn RngCore` instead
/// of a generic parameter — concrete RNGs coerce at the call site
/// (`process.step(&mut rng)`), so callers are unaffected.
pub trait SpreadingProcess {
    /// Advances the process by one round.
    // cobra-lint: draws(bounded)
    fn step(&mut self, rng: &mut dyn RngCore) {
        self.step_faulted(rng, &StepFaults::NONE);
    }

    /// Advances the process by one round under the given fault view: transmissions are lost
    /// i.i.d. with the view's drop probability and crashed vertices never relay (they still
    /// receive). This is the required stepping method; [`step`](Self::step) forwards to it
    /// with [`StepFaults::NONE`].
    ///
    /// Implementations must not touch the RNG for a benign view, so that a zero-fault
    /// wrapper stays bit-identical to the bare process (see
    /// [`fault`](crate::fault)).
    fn step_faulted(&mut self, rng: &mut dyn RngCore, faults: &StepFaults<'_>);

    /// Advances the process by one round in **stream mode**: every entity (vertex or
    /// walker) draws from its own counter-based RNG stream
    /// ([`VertexStreams`](cobra_graph::sample::VertexStreams)) instead of a shared
    /// sequential stream, and frontier iteration may be sharded across the threads of
    /// `engine`. Because the streams are keyed by `(entity, round)` — never by execution
    /// schedule — the resulting trajectory is **identical for every thread count**,
    /// including `threads = 1`.
    ///
    /// Fault semantics match [`step_faulted`](Self::step_faulted) exactly, except that
    /// per-transmission drop draws come from the *initiating* entity's stream, and wrapper
    /// dynamics draw from reserved entities (see [`crate::parallel`]); a benign view must
    /// leave every vertex stream untouched beyond the process's own draws.
    ///
    /// # Errors
    ///
    /// The default returns [`CoreError::InvalidParameters`]: stream mode is opt-in per
    /// process, gated by [`supports_streams`](Self::supports_streams). Implementations
    /// return `Ok(())` after stepping.
    // cobra-lint: par
    fn step_streams(&mut self, engine: &ParallelFrontier, faults: &StepFaults<'_>) -> Result<()> {
        let _ = (engine, faults);
        Err(CoreError::InvalidParameters {
            reason: "process does not implement per-vertex stream stepping".to_string(),
        })
    }

    /// Whether [`step_streams`](Self::step_streams) is implemented (including by every
    /// layer of a wrapper stack). [`crate::parallel::ParallelProcess`] refuses at
    /// construction when this is false, so stream mode can never silently fall back to the
    /// sequential draw order.
    fn supports_streams(&self) -> bool {
        false
    }

    /// Number of rounds performed so far (0 for a freshly constructed process).
    fn round(&self) -> usize;

    /// The set of vertices that are active (hold the token / are infected) **in the current
    /// round**, as a word-level bitset.
    fn active(&self) -> &VertexBitset;

    /// Number of active vertices in the current round.
    ///
    /// Implementations maintain this count incrementally, so it is `O(1)` — hot trace loops
    /// call it every round and must not pay an `O(n)` recount of [`active`](Self::active).
    fn num_active(&self) -> usize;

    /// The vertices that became active in the most recent state transition: after
    /// [`step`](Self::step) this is `A_t \ A_{t-1}` (in unspecified order); after
    /// construction or [`reset`](Self::reset) it is the initial active set.
    ///
    /// This is the delta that lets observers run in `O(|delta|)` per round instead of
    /// rescanning all `n` vertices. Vertices that were active, went inactive and became
    /// active again later re-appear in the delta of the round that re-activated them.
    fn newly_activated(&self) -> &[VertexId];

    /// Calls `f` for every currently active vertex.
    ///
    /// The default iterates [`active`](Self::active) in `O(n/64 + |active|)`; processes that
    /// maintain an explicit frontier list override this with an `O(|active|)` walk.
    fn for_each_active(&self, f: &mut dyn FnMut(VertexId)) {
        self.active().for_each(f);
    }

    /// Calls `f` once per migratable *token* of process state — the list a churn driver
    /// feeds back into [`adopt_state`](Self::adopt_state) on the next graph instance.
    ///
    /// For most processes this is identical to [`for_each_active`](Self::for_each_active)
    /// (one token per active vertex, the default). Processes whose state carries
    /// *multiplicity* override it: multiple random walks emit one entry per **walker**, so
    /// several walkers sharing a vertex appear as repeated entries and the adopting process
    /// can restore exact per-vertex walker counts instead of collapsing them to occupancy.
    fn for_each_token(&self, f: &mut dyn FnMut(VertexId)) {
        self.for_each_active(f);
    }

    /// Number of vertices of the underlying graph.
    fn num_vertices(&self) -> usize {
        self.active().len()
    }

    /// Whether the process has reached its completion condition (e.g. every vertex visited at
    /// least once for COBRA, every vertex currently infected for BIPS).
    fn is_complete(&self) -> bool;

    /// The monotone coverage set the completion criterion tracks, when it is distinct from
    /// the currently active set: COBRA's and the walks' visited sets. `None` for processes
    /// whose completion is a predicate of [`active`](Self::active) alone (BIPS, PUSH,
    /// PUSH–PULL, contact). Used by churn migration and coverage statistics.
    fn coverage(&self) -> Option<&VertexBitset> {
        None
    }

    /// Restores a freshly built process (possibly on a *different* graph instance of the
    /// same size) to mid-run state: `active` becomes the current active set and `coverage`
    /// (if given) seeds the visited/coverage set. The round counter is reset to 0 — callers
    /// that segment runs (churn) account for total rounds themselves.
    ///
    /// `active` may contain duplicates: churn drivers pass the
    /// [`for_each_token`](Self::for_each_token) list, so multiple walks receiving one entry
    /// per walker restore exact per-vertex walker counts. Processes whose state is richer
    /// than (tokens, coverage) adopt the nearest faithful configuration — e.g. an epidemic
    /// re-pins its persistent source, and multiple walks fall back to spreading walkers
    /// round-robin when the adopted list is not one-entry-per-walker.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] if the process does not support adoption
    /// (the default), or if the state does not fit the graph.
    fn adopt_state(&mut self, active: &[VertexId], coverage: Option<&VertexBitset>) -> Result<()> {
        let _ = (active, coverage);
        Err(CoreError::InvalidParameters {
            reason: "process does not support state adoption (required for churn)".to_string(),
        })
    }

    /// Sets the defense layer's per-round branching multiplier: processes with a branching
    /// factor (COBRA, BIPS) multiply their sampled push/probe count by `multiplier` until the
    /// next call. Returns the *expected extra transmissions per round* the new multiplier
    /// costs over the inert `multiplier = 1` (0.0 when nothing changes), so defenses can be
    /// compared at matched total cost. The default is a no-op returning 0.0 — processes
    /// without a branching lever (walks, PUSH, contact) ignore boosts, and a multiplier of 1
    /// must always be free and bit-identical to never calling this at all.
    fn set_branching_boost(&mut self, multiplier: u32) -> f64 {
        let _ = multiplier;
        0.0
    }

    /// Re-activates the given (already valid) vertices: each becomes active/informed from the
    /// next step on, exactly as if it had just received a token. Returns how many vertices
    /// actually changed state (already-active vertices are skipped), which is also the number
    /// of extra transmissions charged to the defense budget. The default is a no-op returning
    /// 0 — position-based processes (single/multiple random walks) cannot mint tokens without
    /// changing their walker count, so they ignore re-seeding. An empty slice must be free.
    fn reseed(&mut self, vertices: &[VertexId]) -> usize {
        let _ = vertices;
        0
    }

    /// Resets the process to its initial state (round 0) so the same allocation can be reused
    /// across Monte-Carlo trials.
    fn reset(&mut self);
}

// `SpreadingProcess` must stay object-safe: the spec layer hands out
// `Box<dyn SpreadingProcess>` and the runner drives `&mut dyn SpreadingProcess`.
const _: fn(&mut dyn SpreadingProcess) = |_| {};

/// Shared validation for [`SpreadingProcess::adopt_state`] implementations: every adopted
/// vertex must exist and an adopted coverage set must be sized for this graph.
pub(crate) fn validate_adopted_state(
    n: usize,
    active: &[VertexId],
    coverage: Option<&VertexBitset>,
) -> Result<()> {
    if let Some(&bad) = active.iter().find(|&&v| v >= n) {
        return Err(CoreError::VertexOutOfRange { vertex: bad, num_vertices: n });
    }
    if let Some(seen) = coverage {
        if seen.len() != n {
            return Err(CoreError::InvalidParameters {
                reason: format!(
                    "adopted coverage set is sized for {} vertices, graph has {n}",
                    seen.len()
                ),
            });
        }
    }
    Ok(())
}

/// Runs `process` until [`SpreadingProcess::is_complete`] holds or `max_rounds` rounds have
/// been executed, returning the completion round or `None` on budget exhaustion.
///
/// If the process is already complete, returns `Some(current round)` without stepping.
// cobra-lint: draws(bounded)
pub fn run_until_complete(
    process: &mut dyn SpreadingProcess,
    rng: &mut dyn RngCore,
    max_rounds: usize,
) -> Option<usize> {
    if process.is_complete() {
        return Some(process.round());
    }
    for _ in 0..max_rounds {
        process.step(rng);
        if process.is_complete() {
            return Some(process.round());
        }
    }
    None
}

/// Runs `process` for up to `max_rounds` rounds recording the number of active vertices after
/// every round (index 0 holds the initial count), stopping early on completion.
// cobra-lint: draws(bounded)
pub fn trace_active_counts(
    process: &mut dyn SpreadingProcess,
    rng: &mut dyn RngCore,
    max_rounds: usize,
) -> Vec<usize> {
    let mut trace = Vec::with_capacity(max_rounds + 1);
    trace.push(process.num_active());
    for _ in 0..max_rounds {
        if process.is_complete() {
            break;
        }
        process.step(rng);
        trace.push(process.num_active());
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    /// A deterministic fake process: one new vertex becomes active each round.
    #[derive(Debug)]
    struct Sweep {
        active: VertexBitset,
        newly: Vec<VertexId>,
        round: usize,
    }

    impl Sweep {
        fn new(n: usize) -> Self {
            let mut active = VertexBitset::new(n);
            active.insert(0);
            Sweep { active, newly: vec![0], round: 0 }
        }
    }

    impl SpreadingProcess for Sweep {
        // A deterministic fake has no transmissions to fault.
        fn step_faulted(&mut self, _rng: &mut dyn RngCore, _faults: &StepFaults<'_>) {
            self.round += 1;
            self.newly.clear();
            if self.round < self.active.len() {
                self.active.insert(self.round);
                self.newly.push(self.round);
            }
        }

        fn round(&self) -> usize {
            self.round
        }

        fn active(&self) -> &VertexBitset {
            &self.active
        }

        fn num_active(&self) -> usize {
            (self.round + 1).min(self.active.len())
        }

        fn newly_activated(&self) -> &[VertexId] {
            &self.newly
        }

        fn is_complete(&self) -> bool {
            self.active.count() == self.active.len()
        }

        fn reset(&mut self) {
            self.active.clear();
            self.active.insert(0);
            self.newly.clear();
            self.newly.push(0);
            self.round = 0;
        }
    }

    #[test]
    fn run_until_complete_counts_rounds() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut p = Sweep::new(5);
        assert_eq!(p.num_vertices(), 5);
        assert_eq!(p.num_active(), 1);
        assert_eq!(p.newly_activated(), &[0]);
        let rounds = run_until_complete(&mut p, &mut rng, 100).unwrap();
        assert_eq!(rounds, 4);
        // Already complete: returns the current round without stepping.
        assert_eq!(run_until_complete(&mut p, &mut rng, 100), Some(4));
    }

    #[test]
    fn run_until_complete_respects_budget() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut p = Sweep::new(10);
        assert_eq!(run_until_complete(&mut p, &mut rng, 3), None);
        assert_eq!(p.round(), 3);
        assert_eq!(p.newly_activated(), &[3]);
    }

    #[test]
    fn trace_records_initial_and_per_round_counts() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut p = Sweep::new(4);
        let trace = trace_active_counts(&mut p, &mut rng, 100);
        assert_eq!(trace, vec![1, 2, 3, 4]);
    }

    #[test]
    fn default_for_each_active_iterates_the_bitset() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut p = Sweep::new(6);
        p.step(&mut rng);
        p.step(&mut rng);
        let mut seen = Vec::new();
        p.for_each_active(&mut |v| seen.push(v));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut p = Sweep::new(3);
        run_until_complete(&mut p, &mut rng, 10);
        p.reset();
        assert_eq!(p.round(), 0);
        assert_eq!(p.num_active(), 1);
        assert_eq!(p.newly_activated(), &[0]);
        assert!(!p.is_complete());
    }

    #[test]
    fn the_trait_is_usable_through_a_box() {
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let mut boxed: Box<dyn SpreadingProcess> = Box::new(Sweep::new(4));
        let rounds = run_until_complete(boxed.as_mut(), &mut rng, 100).unwrap();
        assert_eq!(rounds, 3);
        assert!(boxed.is_complete());
    }
}
