//! The runtime draw-count sanitizer: [`CountingRng`].
//!
//! The static R4 registry (see `cobra-lint`) proves every RNG draw site sits in a function
//! with a declared contract; this wrapper proves the *counts*. Wrapping any `RngCore` in a
//! [`CountingRng`] makes the number of primitive draws observable, so the equivalence suites
//! can assert the per-round draw arithmetic exactly:
//!
//! * a benign fault wrapper (`drop=0`, empty crash set, lossless channel) performs **zero**
//!   extra draws — not "the same trajectory", literally the same number of `next_u64` calls;
//! * COBRA with fixed branching `k` draws exactly `k · |A_t|` times in round `t+1`, PUSH
//!   exactly `|informed|`, PUSH–PULL exactly `n`, a walk exactly `1`, `w` walks exactly `w`
//!   (on graphs without isolated vertices).
//!
//! Every draw in this workspace bottoms out in `next_u32`/`next_u64` (the vendored `rand`'s
//! `gen_bool`, `gen_range` and `fill_bytes` all reduce to `next_u64`; the Lemire
//! `uniform_index` consumes one `next_u64`), so counting the two primitive methods counts
//! everything.

use rand::RngCore;

/// An [`RngCore`] adaptor counting every primitive draw made through it.
///
/// The count is the number of `next_u32`/`next_u64` calls — i.e. raw words drawn, not bytes
/// and not derived quantities. Wrap the RNG, run a round, then read [`count`](Self::count)
/// (or [`take_count`](Self::take_count) for per-round accounting).
#[derive(Debug, Clone)]
pub struct CountingRng<R> {
    inner: R,
    count: u64,
}

impl<R> CountingRng<R> {
    /// Wraps `inner` with the count at zero.
    pub fn new(inner: R) -> Self {
        CountingRng { inner, count: 0 }
    }

    /// Number of primitive draws made through this wrapper since construction or the last
    /// reset.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the current count and resets it to zero — per-round accounting in one call.
    pub fn take_count(&mut self) -> u64 {
        std::mem::take(&mut self.count)
    }

    /// Resets the count to zero.
    pub fn reset_count(&mut self) {
        self.count = 0;
    }

    /// The wrapped RNG.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Unwraps, discarding the count.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: RngCore> RngCore for CountingRng<R> {
    fn next_u32(&mut self) -> u32 {
        self.count += 1;
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.count += 1;
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn counts_primitive_draws_and_resets() {
        let mut rng = CountingRng::new(ChaCha12Rng::seed_from_u64(7));
        assert_eq!(rng.count(), 0);
        rng.next_u64();
        rng.next_u32();
        assert_eq!(rng.count(), 2);
        assert_eq!(rng.take_count(), 2);
        assert_eq!(rng.count(), 0);
        rng.next_u64();
        rng.reset_count();
        assert_eq!(rng.count(), 0);
    }

    #[test]
    fn derived_draws_count_as_exactly_one_word() {
        // The sanitizer's arithmetic rests on these identities in the vendored rand:
        // gen_bool and gen_range<usize> each consume exactly one next_u64.
        let mut rng = CountingRng::new(ChaCha12Rng::seed_from_u64(1));
        let _ = rng.gen_bool(0.5);
        assert_eq!(rng.take_count(), 1);
        let _ = rng.gen_range(0..17usize);
        assert_eq!(rng.take_count(), 1);
        let _ = cobra_graph::sample::uniform_index(&mut rng, 17);
        assert_eq!(rng.take_count(), 1);
    }

    #[test]
    fn wrapping_does_not_perturb_the_stream() {
        let mut wrapped = CountingRng::new(ChaCha12Rng::seed_from_u64(42));
        let mut bare = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(wrapped.next_u64(), bare.next_u64());
        }
        assert_eq!(wrapped.count(), 100);
    }
}
