//! Theoretical round budgets from the paper and the prior work it compares against.
//!
//! These are the quantities the experiment tables print next to the measured values so the
//! reader can check the *shape* of each claim: who wins, by what factor, and where the
//! hypotheses stop applying.

use cobra_graph::Graph;
use cobra_spectral::SpectralProfile;

/// All round budgets relevant to one graph instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoryBounds {
    /// Number of vertices.
    pub n: usize,
    /// The paper's `λ = max(|λ_2|, |λ_n|)`.
    pub lambda: f64,
    /// Theorem 1 / Theorem 2 budget `log(n) / (1-λ)³`.
    pub cobra_cover: f64,
    /// The per-phase budget `log(n) / (1-λ)` from Lemmas 3 and 4.
    pub phase: f64,
    /// Lemma 2 budget `13 m / (1-λ) + 24 C log(n) / (1-λ)²` with `m = 4000 log(n)/(1-λ²)` and
    /// `C = 3` as used in the proof of Theorem 2.
    pub small_set_phase: f64,
    /// The information-theoretic lower bound `log₂(n)` (the active set at most doubles with
    /// `k = 2`).
    pub doubling_lower: f64,
    /// The `O(log² n)` bound of Dutta et al. (SPAA'13) for constant-degree expanders that
    /// Theorem 1 improves upon.
    pub dutta_expander: f64,
    /// The `Ω(n log n)` cover time of a single random walk (`k = 1`).
    pub single_walk: f64,
}

impl TheoryBounds {
    /// Evaluates all budgets for an instance given its size and `λ`.
    pub fn from_lambda(n: usize, lambda: f64) -> Self {
        let log_n = if n <= 1 { 0.0 } else { (n as f64).ln() };
        let gap = 1.0 - lambda;
        let (cobra_cover, phase, small_set_phase) = if gap > 0.0 {
            let m = 4000.0 * log_n / (1.0 - lambda * lambda).max(f64::MIN_POSITIVE);
            (log_n / gap.powi(3), log_n / gap, 13.0 * m / gap + 24.0 * 3.0 * log_n / (gap * gap))
        } else {
            (f64::INFINITY, f64::INFINITY, f64::INFINITY)
        };
        TheoryBounds {
            n,
            lambda,
            cobra_cover,
            phase,
            small_set_phase,
            doubling_lower: if n <= 1 { 0.0 } else { (n as f64).log2() },
            dutta_expander: log_n * log_n,
            single_walk: if n <= 1 { 0.0 } else { n as f64 * log_n },
        }
    }

    /// Evaluates all budgets from a spectral profile.
    pub fn from_profile(profile: &SpectralProfile) -> Self {
        TheoryBounds::from_lambda(profile.n, profile.lambda_abs)
    }

    /// Convenience: analyse the graph spectrally and evaluate the budgets.
    ///
    /// # Errors
    ///
    /// Propagates spectral analysis failures.
    pub fn for_graph(graph: &Graph) -> Result<Self, cobra_spectral::SpectralError> {
        Ok(TheoryBounds::from_profile(&cobra_spectral::analyze(graph)?))
    }

    /// Whether the instance satisfies the paper's hypothesis `1-λ ≥ c·sqrt(log n / n)`.
    pub fn satisfies_hypothesis(&self, c: f64) -> bool {
        cobra_spectral::mixing::satisfies_gap_hypothesis(self.n, self.lambda, c)
    }
}

/// Dutta et al.'s bound for the `d`-dimensional grid / torus on `n` vertices: `Õ(n^{1/d})`
/// (returned here without the poly-log factor, as the comparison shape).
pub fn dutta_grid_bound(n: usize, dim: u32) -> f64 {
    if n == 0 || dim == 0 {
        return 0.0;
    }
    (n as f64).powf(1.0 / f64::from(dim))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators;

    #[test]
    fn bounds_for_a_constant_gap_instance_are_logarithmic() {
        let b = TheoryBounds::from_lambda(1 << 12, 0.5);
        let log_n = (4096f64).ln();
        assert!((b.cobra_cover - log_n / 0.125).abs() < 1e-9);
        assert!((b.phase - log_n / 0.5).abs() < 1e-9);
        assert!(b.small_set_phase > b.phase);
        assert!((b.doubling_lower - 12.0).abs() < 1e-9);
        assert!((b.dutta_expander - log_n * log_n).abs() < 1e-9);
        assert!(b.single_walk > b.dutta_expander);
        assert!(b.satisfies_hypothesis(1.0));
    }

    #[test]
    fn theorem_1_improves_on_dutta_for_large_expanders() {
        // For constant gap the new bound log n / (1-λ)³ is asymptotically smaller than log² n.
        let small = TheoryBounds::from_lambda(1 << 10, 0.5);
        let large = TheoryBounds::from_lambda(1 << 20, 0.5);
        assert!(
            small.cobra_cover / small.dutta_expander > large.cobra_cover / large.dutta_expander
        );
        assert!(large.cobra_cover < large.dutta_expander);
    }

    #[test]
    fn degenerate_gap_gives_infinite_budgets() {
        let b = TheoryBounds::from_lambda(100, 1.0);
        assert_eq!(b.cobra_cover, f64::INFINITY);
        assert_eq!(b.phase, f64::INFINITY);
        assert!(!b.satisfies_hypothesis(1.0));
        let b = TheoryBounds::from_lambda(1, 0.2);
        assert_eq!(b.cobra_cover, 0.0);
        assert_eq!(b.doubling_lower, 0.0);
    }

    #[test]
    fn bounds_from_graph_and_profile_agree() {
        let g = generators::petersen().unwrap();
        let profile = cobra_spectral::analyze(&g).unwrap();
        let from_graph = TheoryBounds::for_graph(&g).unwrap();
        let from_profile = TheoryBounds::from_profile(&profile);
        assert_eq!(from_graph, from_profile);
        assert!((from_graph.lambda - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn grid_bound_shape() {
        assert!((dutta_grid_bound(10_000, 2) - 100.0).abs() < 1e-9);
        assert!((dutta_grid_bound(1_000_000, 3) - 100.0).abs() < 1e-6);
        assert_eq!(dutta_grid_bound(0, 2), 0.0);
        assert_eq!(dutta_grid_bound(100, 0), 0.0);
        // The grid bound is polynomially larger than the expander bound for the same n.
        let expander = TheoryBounds::from_lambda(1 << 16, 0.5);
        assert!(dutta_grid_bound(1 << 16, 2) > expander.cobra_cover);
    }
}
