//! Offline stand-in for `rand_chacha`: genuine ChaCha stream ciphers used as RNGs.
//!
//! The block function is the real ChaCha permutation (with 8, 12 or 20 rounds), keyed from
//! the 32-byte seed, so the statistical quality matches the upstream crate. The exact output
//! stream is *not* guaranteed to be byte-identical to upstream `rand_chacha` (word order and
//! counter layout differ) — nothing in this workspace depends on upstream byte streams, only
//! on seeded determinism.

use rand::{RngCore, SeedableRng};

/// A ChaCha-based RNG with `R` double-rounds… see [`ChaCha8Rng`], [`ChaCha12Rng`],
/// [`ChaCha20Rng`].
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// The 16-word ChaCha input state (constants, key, counter, nonce).
    state: [u32; 16],
    /// Buffered keystream words from the last block.
    buffer: [u32; 16],
    /// Next unread index into `buffer` (16 = exhausted).
    index: usize,
}

/// ChaCha with 8 rounds.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds (the workspace default via `TrialRng`).
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    /// Builds the independent, deterministic stream for one `(entity, round)` pair under a
    /// shared 32-byte trial key.
    ///
    /// The split is counter-based, keyed into the ChaCha block counter and nonce words:
    ///
    /// | state word | content                                            |
    /// |-----------:|----------------------------------------------------|
    /// | 12         | in-stream block counter, starts at 0 (**seekable**) |
    /// | 13         | `round` (low 32 bits)                              |
    /// | 14–15      | `entity` (little-endian 64-bit)                    |
    ///
    /// Every `(key, entity, round)` triple therefore selects a disjoint region of the ChaCha
    /// keystream: two streams differing in entity or round never overlap, and the same
    /// triple always replays the identical word sequence regardless of what any other
    /// stream consumed. A stream holds 2³² blocks (2³⁶ bytes) before the word-12 counter
    /// would carry into the round word; no caller comes near that.
    ///
    /// Rounds at or above 2³² are not representable in this layout and are rejected.
    pub fn stream_for(key: &[u8; 32], entity: u64, round: u64) -> Self {
        assert!(round < (1 << 32), "stream_for supports rounds below 2^32 (got {round})");
        let mut rng = Self::from_seed(*key);
        rng.state[12] = 0;
        rng.state[13] = round as u32;
        rng.state[14] = entity as u32;
        rng.state[15] = (entity >> 32) as u32;
        rng
    }

    /// Seeks to an absolute word position in this stream's keystream.
    ///
    /// Position `p` is the index of the next 32-bit word [`RngCore::next_u32`] will return,
    /// counted from the stream's origin: `set_word_pos(0)` rewinds to the first word. The
    /// position must stay below the stream's 2³⁶-word capacity so the in-stream counter
    /// (word 12) cannot carry into the round word.
    pub fn set_word_pos(&mut self, word_pos: u64) {
        let block = word_pos / 16;
        assert!(block < u64::from(u32::MAX), "word position beyond the 2^36-word stream");
        self.state[12] = block as u32;
        self.refill();
        self.index = (word_pos % 16) as usize;
    }

    /// The absolute word position the next [`RngCore::next_u32`] call will read.
    pub fn word_pos(&self) -> u64 {
        // `refill` advances the counter past the buffered block, so the buffered block's
        // index is one behind the live counter — except before the first refill, where the
        // exhausted-buffer sentinel (`index == 16`) marks position 0 of the live block.
        if self.index >= 16 {
            u64::from(self.state[12]) * 16
        } else {
            (u64::from(self.state[12]) - 1) * 16 + self.index as u64
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12–13.
        let (low, carry) = self.state[12].overflowing_add(1);
        self.state[12] = low;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let low = u64::from(self.next_u32());
        let high = u64::from(self.next_u32());
        low | (high << 32)
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaChaRng { state, buffer: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha12Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn round_counts_give_different_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(1);
        let mut c = ChaCha20Rng::seed_from_u64(1);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(x, y);
        assert_ne!(y, z);
    }

    #[test]
    fn output_looks_uniform() {
        // Crude sanity check: the mean of many uniform u8s must be near 127.5.
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut total = 0u64;
        let samples = 100_000;
        for _ in 0..samples {
            total += u64::from(rng.next_u32() & 0xFF);
        }
        let mean = total as f64 / samples as f64;
        assert!((mean - 127.5).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        rng.next_u32();
        let mut copy = rng.clone();
        for _ in 0..40 {
            assert_eq!(rng.next_u64(), copy.next_u64());
        }
    }

    #[test]
    fn stream_for_is_deterministic_per_triple() {
        let key = [9u8; 32];
        let mut a = ChaCha8Rng::stream_for(&key, 17, 3);
        let mut b = ChaCha8Rng::stream_for(&key, 17, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ_across_entity_round_and_key() {
        let key = [1u8; 32];
        let other_key = [2u8; 32];
        let base: Vec<u64> =
            (0..8).map(|_| ChaCha8Rng::stream_for(&key, 5, 2).next_u64()).collect();
        let mut by_entity = ChaCha8Rng::stream_for(&key, 6, 2);
        let mut by_round = ChaCha8Rng::stream_for(&key, 5, 3);
        let mut by_key = ChaCha8Rng::stream_for(&other_key, 5, 2);
        assert_ne!(base[0], by_entity.next_u64());
        assert_ne!(base[0], by_round.next_u64());
        assert_ne!(base[0], by_key.next_u64());
    }

    #[test]
    fn stream_words_are_independent_of_interleaving() {
        // Reading stream (7, 1) must not perturb stream (8, 1): replay one of them alone
        // and against interleaved consumption of the other.
        let key = [3u8; 32];
        let mut alone = ChaCha8Rng::stream_for(&key, 8, 1);
        let expected: Vec<u64> = (0..50).map(|_| alone.next_u64()).collect();
        let mut a = ChaCha8Rng::stream_for(&key, 7, 1);
        let mut b = ChaCha8Rng::stream_for(&key, 8, 1);
        for want in expected {
            let _ = a.next_u64();
            let _ = a.next_u64();
            assert_eq!(b.next_u64(), want);
        }
    }

    #[test]
    fn set_word_pos_seeks_and_reports_position() {
        let key = [4u8; 32];
        let mut rng = ChaCha8Rng::stream_for(&key, 12, 0);
        assert_eq!(rng.word_pos(), 0);
        let words: Vec<u32> = (0..100).map(|_| rng.next_u32()).collect();
        assert_eq!(rng.word_pos(), 100);
        for pos in [0u64, 1, 15, 16, 17, 31, 63, 99] {
            rng.set_word_pos(pos);
            assert_eq!(rng.word_pos(), pos);
            assert_eq!(rng.next_u32(), words[pos as usize], "seek to {pos}");
        }
    }

    #[test]
    fn high_rounds_are_rejected() {
        let result = std::panic::catch_unwind(|| ChaCha8Rng::stream_for(&[0u8; 32], 0, 1 << 32));
        assert!(result.is_err());
    }
}
