//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote` — the build container
//! has no network access). Supported shapes, which cover every derived type in this
//! workspace:
//!
//! * non-generic `struct`s with named fields;
//! * non-generic `enum`s whose variants are unit variants or struct variants.
//!
//! Field *types* never need to be parsed: the generated code delegates every field to
//! `::serde::Serialize` / `::serde::Deserialize`, so only field and variant names are read
//! from the token stream. Unsupported shapes (tuple structs, generics) panic at expansion
//! time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct TypeDef {
    name: String,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    /// `None` for a unit variant, field names for a struct variant.
    fields: Option<Vec<String>>,
}

/// Skips outer attributes (`#[...]`, including doc comments) and visibility modifiers.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The attribute body: a bracketed group.
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("expected attribute body after `#`, found {other:?}"),
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                iter.next();
                // Optional `(crate)` / `(super)` restriction.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type,` field lists, recording only the names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => panic!("expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: everything up to the next top-level comma. Groups are single
        // tokens, so nested commas (e.g. in tuples) never appear at this level, and the
        // only same-level commas inside a type occur between `<` and `>` of a generic
        // argument list, which we track by angle-bracket depth.
        let mut angle_depth = 0i32;
        for token in iter.by_ref() {
            match &token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => panic!("expected variant name, found {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let group = match iter.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!("peeked a group"),
                };
                Some(parse_named_fields(group.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("vendored serde_derive does not support tuple variant `{name}`")
            }
            _ => None,
        };
        variants.push(Variant { name, fields });
        // Optional trailing comma (and discriminants are unsupported, so `,` or end).
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
    }
    variants
}

fn parse_type_def(input: TokenStream) -> TypeDef {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("vendored serde_derive does not support generic type `{name}`")
        }
        other => panic!(
            "expected braced body for `{name}` (tuple/unit structs unsupported), found {other:?}"
        ),
    };
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    };
    TypeDef { name, kind }
}

fn generate_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n fn serialize(&self) -> ::serde::Value {{\n"
    ));
    match &def.kind {
        Kind::Struct(fields) => {
            out.push_str(" ::serde::Value::Object(vec![\n");
            for field in fields {
                out.push_str(&format!(
                    " (String::from(\"{field}\"), ::serde::Serialize::serialize(&self.{field})),\n"
                ));
            }
            out.push_str(" ])\n");
        }
        Kind::Enum(variants) => {
            out.push_str(" match self {\n");
            for variant in variants {
                let vname = &variant.name;
                match &variant.fields {
                    None => out.push_str(&format!(
                        " {name}::{vname} => ::serde::Value::String(String::from(\"{vname}\")),\n"
                    )),
                    Some(fields) => {
                        let bindings = fields.join(", ");
                        out.push_str(&format!(" {name}::{vname} {{ {bindings} }} => "));
                        out.push_str("::serde::Value::Object(vec![(");
                        out.push_str(&format!(
                            "String::from(\"{vname}\"), ::serde::Value::Object(vec![\n"
                        ));
                        for field in fields {
                            out.push_str(&format!(
                                " (String::from(\"{field}\"), ::serde::Serialize::serialize({field})),\n"
                            ));
                        }
                        out.push_str(" ]))]),\n");
                    }
                }
            }
            out.push_str(" }\n");
        }
    }
    out.push_str(" }\n}\n");
    out
}

fn generate_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Deserialize for {name} {{\n fn deserialize(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n"
    ));
    match &def.kind {
        Kind::Struct(fields) => {
            out.push_str(&format!(
                " let entries = value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for struct {name}\"))?;\n"
            ));
            out.push_str(&format!(" Ok({name} {{\n"));
            for field in fields {
                out.push_str(&format!(
                    " {field}: ::serde::Deserialize::deserialize(\
                     ::serde::object_field(entries, \"{field}\")?)?,\n"
                ));
            }
            out.push_str(" })\n");
        }
        Kind::Enum(variants) => {
            let unit: Vec<&Variant> = variants.iter().filter(|v| v.fields.is_none()).collect();
            let with_fields: Vec<&Variant> =
                variants.iter().filter(|v| v.fields.is_some()).collect();
            if !unit.is_empty() {
                out.push_str(" if let Some(tag) = value.as_str() {\n return match tag {\n");
                for variant in &unit {
                    let vname = &variant.name;
                    out.push_str(&format!(" \"{vname}\" => Ok({name}::{vname}),\n"));
                }
                out.push_str(&format!(
                    " other => Err(::serde::Error::custom(format!(\
                     \"unknown variant `{{other}}` of {name}\"))),\n }};\n }}\n"
                ));
            }
            if with_fields.is_empty() {
                out.push_str(&format!(
                    " Err(::serde::Error::custom(\"expected string tag for enum {name}\"))\n"
                ));
            } else {
                out.push_str(&format!(
                    " let entries = value.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"expected object for enum {name}\"))?;\n \
                     if entries.len() != 1 {{\n return Err(::serde::Error::custom(\
                     \"expected single-key object for enum {name}\"));\n }}\n \
                     let (tag, inner) = &entries[0];\n match tag.as_str() {{\n"
                ));
                for variant in &with_fields {
                    let vname = &variant.name;
                    let fields = variant.fields.as_ref().expect("struct variant");
                    out.push_str(&format!(
                        " \"{vname}\" => {{\n let fields = inner.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object for variant {vname}\"))?;\n \
                         Ok({name}::{vname} {{\n"
                    ));
                    for field in fields {
                        out.push_str(&format!(
                            " {field}: ::serde::Deserialize::deserialize(\
                             ::serde::object_field(fields, \"{field}\")?)?,\n"
                        ));
                    }
                    out.push_str(" })\n },\n");
                }
                out.push_str(&format!(
                    " other => Err(::serde::Error::custom(format!(\
                     \"unknown variant `{{other}}` of {name}\"))),\n }}\n"
                ));
            }
        }
    }
    out.push_str(" }\n}\n");
    out
}

/// Derives the vendored `serde::Serialize` for structs with named fields and
/// unit/struct-variant enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input);
    generate_serialize(&def).parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` for structs with named fields and
/// unit/struct-variant enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input);
    generate_deserialize(&def).parse().expect("generated Deserialize impl parses")
}
