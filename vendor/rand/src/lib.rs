//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors a minimal,
//! API-compatible subset of `rand` 0.8: [`RngCore`], [`Rng`] (with `gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`] and [`seq::SliceRandom`]. The implementations follow the
//! upstream semantics (half-open uniform ranges, Fisher–Yates shuffling, 53-bit uniform
//! floats) but make no guarantee of producing the same byte streams as the real crate —
//! everything in this workspace derives randomness from explicit seeds and only relies on
//! statistical quality, not on exact upstream values.

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the full value domain (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (the `SampleRange` trait of the real crate).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value below `bound` (> 0) with negligible modulo bias via 128-bit
/// widening multiply.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing random sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64`, expanding it to a full seed with SplitMix64 (the same
    /// construction the real crate uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related random operations (`SliceRandom`).

    use crate::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak mixing step, good enough for the unit tests below.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut rng = Counter(3);
        let mut values: Vec<usize> = (0..50).collect();
        values.shuffle(&mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
