//! Offline stand-in for `criterion`.
//!
//! Benchmarks compile and run against the same API surface (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `black_box`, `BenchmarkId`) but the statistics machinery is replaced by
//! a simple median-of-samples wall-clock measurement printed to stdout. Good enough to spot
//! order-of-magnitude regressions offline; not a substitute for the real harness.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { name, sample_size: 10 }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new() };
        f(&mut bencher);
        bencher.report("", id, 10);
        self
    }
}

/// A benchmark identifier made of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Accepted for API compatibility; the vendored harness has no warm-up phase.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the vendored harness times a fixed sample count.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new() };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string(), self.sample_size);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new() };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string(), self.sample_size);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Runs and times the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed shakedown run, then timed samples (the caller's sample size is applied
        // at report time; we record a fixed small number here to bound runtime).
        black_box(routine());
        for _ in 0..5 {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str, _sample_size: usize) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples recorded");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let best = sorted[0];
        println!("  {group}/{id}: median {median:?}, best {best:?} ({} samples)", sorted.len());
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
