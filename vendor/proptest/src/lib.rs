//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, range and tuple strategies,
//! [`collection::vec`], `prop_map` / `prop_flat_map`, and the `prop_assert*` / `prop_assume!`
//! macros. Each test runs a fixed number of seeded random cases (derived from the test name,
//! so runs are reproducible); failing cases panic with the assertion message but are **not**
//! shrunk.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Everything a `use proptest::prelude::*` caller expects in scope.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline harness fast while still giving
        // each property a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for a named test, so each test gets a stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A generator of random values (no shrinking in the vendored stand-in).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }

    /// Generates a value, then generates from the strategy `flat_map` derives from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, flat_map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, flat_map }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    flat_map: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.flat_map)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u64;
                start.wrapping_add(rng.below(span.saturating_add(1)) as $t)
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        // 53 uniform mantissa bits in [0, 1), scaled into the half-open range.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A range of collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange { min: range.start, max_inclusive: range.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            SizeRange { min: *range.start(), max_inclusive: *range.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { min: exact, max_inclusive: exact }
        }
    }

    /// A strategy producing `Vec`s of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Declares seeded random-case tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut proptest_case_rng = $crate::TestRng::for_test(stringify!($name));
                for _proptest_case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut proptest_case_rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("proptest assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    panic!(
                        "proptest assertion failed: `{} == {}`\n  left: {left:?}\n right: {right:?}",
                        stringify!($left),
                        stringify!($right),
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    panic!(
                        "proptest assertion failed: `{} != {}`\n  both: {left:?}",
                        stringify!($left),
                        stringify!($right),
                    );
                }
            }
        }
    };
}

/// Skips the current random case when its inputs don't satisfy a precondition.
///
/// Must be used at the top level of the `proptest!` body (it expands to `continue` targeting
/// the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let x = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&x));
            let y = (0u64..=5).sample(&mut rng);
            assert!(y <= 5);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::for_test("vec");
        let strategy = collection::vec(0usize..4, 2..=6);
        for _ in 0..200 {
            let v = strategy.sample(&mut rng);
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn maps_compose() {
        let mut rng = TestRng::for_test("maps");
        let strategy = (1usize..5).prop_flat_map(|n| (0..n, Just(n)).prop_map(|(i, n)| (i, n)));
        for _ in 0..200 {
            let (i, n) = strategy.sample(&mut rng);
            assert!(i < n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0usize..50, y in 0usize..50) {
            prop_assume!(x != y);
            prop_assert_ne!(x, y);
            prop_assert!(x < 50 && y < 50);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
