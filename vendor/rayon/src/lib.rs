//! Offline stand-in for `rayon` exposing the slice of the API this workspace uses:
//! `(a..b).into_par_iter().map(f).collect::<Vec<_>>()`.
//!
//! The implementation is real data parallelism — the index range is split into contiguous
//! chunks, one per available core, executed on scoped OS threads, and the results are
//! reassembled in index order so the output is identical to a sequential run.

use std::ops::Range;

pub mod prelude {
    //! The traits a `use rayon::prelude::*` caller expects in scope.
    pub use crate::{FromParallelIterator, IntoParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item;
    /// The parallel iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { range: self }
    }
}

/// A parallel iterator over a `usize` range.
#[derive(Debug, Clone)]
pub struct RangeParIter {
    range: Range<usize>,
}

impl RangeParIter {
    /// Maps each index through `op` (executed in parallel at collection time).
    pub fn map<T, F>(self, op: F) -> MapParIter<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        MapParIter { range: self.range, op }
    }
}

/// The result of [`RangeParIter::map`].
#[derive(Debug, Clone)]
pub struct MapParIter<F> {
    range: Range<usize>,
    op: F,
}

impl<F> MapParIter<F> {
    /// Executes the map in parallel and collects the results in index order.
    pub fn collect<C, T>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: FromParallelIterator<T>,
    {
        C::from_par_iter(par_map_range(self.range, &self.op))
    }
}

/// Collection types a parallel iterator can gather into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in index order.
    fn from_par_iter(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter(items: Vec<T>) -> Self {
        items
    }
}

/// Runs `op` over contiguous chunks of `items` on scoped OS threads — the sharded-round
/// primitive of the parallel frontier engine.
///
/// `items` is split into at most `threads` contiguous chunks of near-equal size; each chunk
/// runs `op(start_offset, chunk)` on its own scoped thread (the first chunk runs on the
/// calling thread), and the per-chunk results come back **in chunk order**, so callers can
/// merge shard outputs deterministically regardless of which thread finished first.
///
/// With `threads == 1` or a single chunk this degrades to a plain sequential call with zero
/// thread spawns, which is what makes `--threads 1` bit-identical to higher thread counts
/// *and* cheap.
pub fn par_chunks<T, R, F>(items: &[T], threads: usize, op: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(items.len());
    if threads == 1 {
        return vec![op(0, items)];
    }
    let chunk = items.len().div_ceil(threads);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len().div_ceil(chunk), || None);
    std::thread::scope(|scope| {
        let mut rest = &mut slots[..];
        for (index, part) in items.chunks(chunk).enumerate() {
            let (slot, tail) = rest.split_first_mut().expect("one slot per chunk");
            rest = tail;
            let base = index * chunk;
            if rest.is_empty() {
                // Last chunk: run on the calling thread instead of spawning one more.
                *slot = Some(op(base, part));
            } else {
                let op = &op;
                scope.spawn(move || {
                    *slot = Some(op(base, part));
                });
            }
        }
    });
    slots.into_iter().map(|slot| slot.expect("every chunk was computed")).collect()
}

/// Range analogue of [`par_chunks`] for processes that scan `0..len` instead of a frontier
/// slice (BIPS, PUSH–PULL): splits the index range into at most `threads` contiguous
/// sub-ranges and runs `op` on each, returning the results in range order.
pub fn par_ranges<R, F>(len: usize, threads: usize, op: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(len);
    if threads == 1 {
        return vec![op(0..len)];
    }
    let chunk = len.div_ceil(threads);
    let starts: Vec<usize> = (0..len).step_by(chunk).collect();
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(starts.len(), || None);
    std::thread::scope(|scope| {
        let mut rest = &mut slots[..];
        for &start in &starts {
            let (slot, tail) = rest.split_first_mut().expect("one slot per range");
            rest = tail;
            let range = start..(start + chunk).min(len);
            if rest.is_empty() {
                *slot = Some(op(range));
            } else {
                let op = &op;
                scope.spawn(move || {
                    *slot = Some(op(range));
                });
            }
        }
    });
    slots.into_iter().map(|slot| slot.expect("every range was computed")).collect()
}

/// The number of worker threads to use.
fn thread_count(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    cores.min(jobs).max(1)
}

fn par_map_range<T, F>(range: Range<usize>, op: &F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    let jobs = range.len();
    if jobs == 0 {
        return Vec::new();
    }
    let threads = thread_count(jobs);
    if threads == 1 {
        return range.map(op).collect();
    }
    let chunk = jobs.div_ceil(threads);
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (index, slice) in slots.chunks_mut(chunk).enumerate() {
            let base = range.start + index * chunk;
            scope.spawn(move || {
                for (offset, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(op(base + offset));
                }
            });
        }
    });
    slots.into_iter().map(|slot| slot.expect("every index was computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_collects_empty() {
        let out: Vec<u8> = (5..5).into_par_iter().map(|_| 1u8).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn par_chunks_covers_all_items_in_order() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 3, 4, 8, 200] {
            let shards = crate::par_chunks(&items, threads, |base, chunk| (base, chunk.to_vec()));
            let mut rebuilt = Vec::new();
            let mut expected_base = 0;
            for (base, chunk) in shards {
                assert_eq!(base, expected_base, "chunk offsets must be contiguous");
                expected_base += chunk.len();
                rebuilt.extend(chunk);
            }
            assert_eq!(rebuilt, items, "threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_empty_input_yields_no_chunks() {
        let shards = crate::par_chunks::<u8, u8, _>(&[], 4, |_, _| 0);
        assert!(shards.is_empty());
    }

    #[test]
    fn par_ranges_partitions_the_index_space() {
        for threads in [1, 2, 3, 5, 64] {
            let shards = crate::par_ranges(97, threads, |range| range.collect::<Vec<_>>());
            let rebuilt: Vec<usize> = shards.into_iter().flatten().collect();
            assert_eq!(rebuilt, (0..97).collect::<Vec<_>>(), "threads = {threads}");
        }
        assert!(crate::par_ranges::<u8, _>(0, 4, |_| 0).is_empty());
    }
}
