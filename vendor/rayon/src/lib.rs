//! Offline stand-in for `rayon` exposing the slice of the API this workspace uses:
//! `(a..b).into_par_iter().map(f).collect::<Vec<_>>()`.
//!
//! The implementation is real data parallelism — the index range is split into contiguous
//! chunks, one per available core, executed on scoped OS threads, and the results are
//! reassembled in index order so the output is identical to a sequential run.

use std::ops::Range;

pub mod prelude {
    //! The traits a `use rayon::prelude::*` caller expects in scope.
    pub use crate::{FromParallelIterator, IntoParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item;
    /// The parallel iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;

    fn into_par_iter(self) -> RangeParIter {
        RangeParIter { range: self }
    }
}

/// A parallel iterator over a `usize` range.
#[derive(Debug, Clone)]
pub struct RangeParIter {
    range: Range<usize>,
}

impl RangeParIter {
    /// Maps each index through `op` (executed in parallel at collection time).
    pub fn map<T, F>(self, op: F) -> MapParIter<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        MapParIter { range: self.range, op }
    }
}

/// The result of [`RangeParIter::map`].
#[derive(Debug, Clone)]
pub struct MapParIter<F> {
    range: Range<usize>,
    op: F,
}

impl<F> MapParIter<F> {
    /// Executes the map in parallel and collects the results in index order.
    pub fn collect<C, T>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: FromParallelIterator<T>,
    {
        C::from_par_iter(par_map_range(self.range, &self.op))
    }
}

/// Collection types a parallel iterator can gather into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in index order.
    fn from_par_iter(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter(items: Vec<T>) -> Self {
        items
    }
}

/// The number of worker threads to use.
fn thread_count(jobs: usize) -> usize {
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    cores.min(jobs).max(1)
}

fn par_map_range<T, F>(range: Range<usize>, op: &F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    let jobs = range.len();
    if jobs == 0 {
        return Vec::new();
    }
    let threads = thread_count(jobs);
    if threads == 1 {
        return range.map(op).collect();
    }
    let chunk = jobs.div_ceil(threads);
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (index, slice) in slots.chunks_mut(chunk).enumerate() {
            let base = range.start + index * chunk;
            scope.spawn(move || {
                for (offset, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(op(base + offset));
                }
            });
        }
    });
    slots.into_iter().map(|slot| slot.expect("every index was computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_collects_empty() {
        let out: Vec<u8> = (5..5).into_par_iter().map(|_| 1u8).collect();
        assert!(out.is_empty());
    }
}
