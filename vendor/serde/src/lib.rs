//! Offline stand-in for `serde`.
//!
//! The build container has no network access, so the workspace vendors a small
//! self-describing serialization framework under the `serde` name: types serialize into a
//! JSON-like [`Value`] tree and deserialize back out of one. The `#[derive(Serialize,
//! Deserialize)]` macros (re-exported from the vendored `serde_derive`) support exactly the
//! shapes this workspace uses — non-generic structs with named fields, and enums with unit
//! and struct variants (externally tagged, like upstream serde's default representation).

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like self-describing value tree — the data model of this vendored serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (stored as `f64`; integers up to 2^53 round-trip exactly).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered map with string keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Looks up a field in an object's entries — used by the derive-generated code.
pub fn object_field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the [`Value`] data model.
    fn serialize(&self) -> Value;
}

/// Types that can deserialize themselves out of a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes an instance from `value`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if `value` does not have the expected shape.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let x = value
                    .as_f64()
                    .ok_or_else(|| Error::custom(concat!("expected number for ", stringify!($t))))?;
                if x.fract() != 0.0 || x < 0.0 || x > <$t>::MAX as f64 {
                    return Err(Error::custom(format!(
                        "number {x} out of range for {}", stringify!($t)
                    )));
                }
                Ok(x as $t)
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let x = value
                    .as_f64()
                    .ok_or_else(|| Error::custom(concat!("expected number for ", stringify!($t))))?;
                if x.fract() != 0.0 || x < <$t>::MIN as f64 || x > <$t>::MAX as f64 {
                    return Err(Error::custom(format!(
                        "number {x} out of range for {}", stringify!($t)
                    )));
                }
                Ok(x as $t)
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::Number(*self)
        } else {
            // JSON has no NaN/inf; mirror serde_json's lossy `null` encoding.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(x) => Ok(*x),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        f64::from(*self).serialize()
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::custom("expected boolean"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value.as_array().ok_or_else(|| Error::custom("expected 2-element array"))?;
        if items.len() != 2 {
            return Err(Error::custom("expected 2-element array"));
        }
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(usize::deserialize(&7usize.serialize()).unwrap(), 7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(f64::deserialize(&f64::NAN.serialize()).unwrap().is_nan());
        assert_eq!(bool::deserialize(&true.serialize()).unwrap(), true);
        assert_eq!(String::deserialize(&"hi".to_string().serialize()).unwrap(), "hi");
        let v: Vec<usize> = Vec::deserialize(&vec![1usize, 2, 3].serialize()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let none: Option<u32> = Deserialize::deserialize(&Value::Null).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn out_of_range_numbers_are_rejected() {
        assert!(u8::deserialize(&Value::Number(300.0)).is_err());
        assert!(u32::deserialize(&Value::Number(-1.0)).is_err());
        assert!(usize::deserialize(&Value::Number(1.5)).is_err());
    }

    #[test]
    fn value_round_trips_as_itself() {
        let value = Value::Object(vec![
            ("a".to_string(), Value::Number(1.0)),
            ("b".to_string(), Value::Array(vec![Value::Null, Value::Bool(true)])),
        ]);
        assert_eq!(value.serialize(), value);
        assert_eq!(Value::deserialize(&value).unwrap(), value);
    }

    #[test]
    fn object_field_lookup() {
        let entries = vec![("a".to_string(), Value::Number(1.0))];
        assert!(object_field(&entries, "a").is_ok());
        assert!(object_field(&entries, "b").is_err());
    }
}
