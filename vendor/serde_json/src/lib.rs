//! Offline stand-in for `serde_json`: JSON text ↔ the vendored [`serde::Value`] model.
//!
//! Supports the workspace's usage surface: [`to_string`], [`to_string_pretty`] and
//! [`from_str`] with full JSON syntax (strings with escapes, numbers, nested arrays and
//! objects). Non-finite floats serialize as `null`, mirroring upstream `serde_json`.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Infallible for the vendored data model, but keeps the upstream `Result` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Serializes `value` to indented JSON text.
///
/// # Errors
///
/// Infallible for the vendored data model, but keeps the upstream `Result` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.serialize(), 0, &mut out);
    Ok(out)
}

/// Parses JSON text and deserializes a `T` from it.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", parser.pos)));
    }
    T::deserialize(&value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        // `{}` on f64 is the shortest representation that round-trips exactly.
        out.push_str(&format!("{x}"));
    }
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => write_number(*x, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(key, out);
                out.push_str(": ");
                write_value_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::custom(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("a \"quoted\"\nvalue".to_string())),
            ("xs".to_string(), Value::Array(vec![Value::Number(1.0), Value::Number(-2.5)])),
            ("flag".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
        ]);
        struct Wrap(Value);
        impl Serialize for Wrap {
            fn serialize(&self) -> Value {
                self.0.clone()
            }
        }
        let text = to_string(&Wrap(value.clone())).unwrap();
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        let back = parser.parse_value().unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn numbers_print_compactly() {
        let mut out = String::new();
        write_number(3.0, &mut out);
        assert_eq!(out, "3");
        let mut out = String::new();
        write_number(0.25, &mut out);
        assert_eq!(out, "0.25");
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
