//! Reproduces the headline of Theorem 1 interactively: sweeps the size of random `r`-regular
//! expanders for several degrees and prints the measured COBRA cover time next to `ln n`,
//! demonstrating that the growth is logarithmic and essentially degree-independent.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example expander_cover_time
//! ```

use cobra::core::cobra::Branching;
use cobra::core::cover;
use cobra::graph::generators;
use cobra::stats::regression::log_fit;
use cobra::stats::summary::Summary;
use cobra::stats::table::{fmt_float, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    let sizes = [128usize, 256, 512, 1024, 2048];
    let degrees = [3usize, 8, 16];
    let trials = 15;

    let mut table = Table::with_headers(
        "COBRA (k=2) cover time on random r-regular expanders",
        &["n", "r", "lambda", "mean cover", "cover/ln n"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();

    for &n in &sizes {
        for &r in &degrees {
            if r >= n || (n * r) % 2 != 0 {
                continue;
            }
            let graph = generators::connected_random_regular(n, r, &mut rng)?;
            let profile = cobra::spectral::analyze(&graph)?;
            let mut summary = Summary::new();
            for _ in 0..trials {
                let outcome =
                    cover::cover_time(&graph, 0, Branching::fixed(2)?, 1_000_000, &mut rng)?;
                summary.record(outcome.rounds as f64);
            }
            table.add_row(vec![
                n.to_string(),
                r.to_string(),
                fmt_float(profile.lambda_abs),
                fmt_float(summary.mean()),
                fmt_float(summary.mean() / (n as f64).ln()),
            ]);
            xs.push(n as f64);
            ys.push(summary.mean());
        }
    }

    println!("{}", table.render());
    if let Some(fit) = log_fit(&xs, &ys) {
        println!(
            "logarithmic fit: cover ~ {:.2} + {:.2} ln n   (R^2 = {:.3})",
            fit.intercept, fit.slope, fit.r_squared
        );
        println!("Theorem 1 predicts exactly this shape: O(log n), independent of the degree.");
    }
    Ok(())
}
