//! Contrast experiment from the introduction: COBRA covers expanders in `O(log n)` rounds but
//! needs polynomially many rounds on grids/tori (Dutta et al.), and a single random walk is
//! far slower than both.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example grid_vs_expander
//! ```

use cobra::core::baselines::RandomWalk;
use cobra::core::cobra::{Branching, CobraProcess};
use cobra::core::process::run_until_complete;
use cobra::graph::generators;
use cobra::stats::summary::Summary;
use cobra::stats::table::{fmt_float, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha12Rng::seed_from_u64(13);
    let trials = 10;
    let mut table = Table::with_headers(
        "COBRA (k=2) vs a single random walk: expander against torus",
        &["graph", "n", "lambda", "COBRA cover", "walk cover", "walk/COBRA"],
    );

    let mut instances = Vec::new();
    for side in [16usize, 24, 32] {
        instances.push((format!("torus-{side}x{side}"), generators::torus_2d(side, side)?));
        let n = side * side;
        let graph = generators::connected_random_regular(n, 4, &mut rng)?;
        instances.push((format!("random-4-regular-n{n}"), graph));
    }

    for (label, graph) in &instances {
        let profile = cobra::spectral::analyze(graph)?;
        let mut cobra_summary = Summary::new();
        let mut walk_summary = Summary::new();
        for _ in 0..trials {
            let mut cobra = CobraProcess::new(graph, 0, Branching::fixed(2)?)?;
            cobra_summary.record(
                run_until_complete(&mut cobra, &mut rng, 10_000_000).expect("covers") as f64,
            );
            let mut walk = RandomWalk::new(graph, 0)?;
            walk_summary.record(
                run_until_complete(&mut walk, &mut rng, 100_000_000).expect("covers") as f64,
            );
        }
        table.add_row(vec![
            label.clone(),
            graph.num_vertices().to_string(),
            fmt_float(profile.lambda_abs),
            fmt_float(cobra_summary.mean()),
            fmt_float(walk_summary.mean()),
            fmt_float(walk_summary.mean() / cobra_summary.mean()),
        ]);
    }

    println!("{}", table.render());
    println!("expanders: COBRA needs a handful of rounds (O(log n)); tori: polynomially many");
    println!("(~n^(1/2) for 2-D, per Dutta et al.); the single walk is slowest everywhere");
    Ok(())
}
