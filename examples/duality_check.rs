//! Demonstrates Theorem 4: the exact duality between COBRA hitting-time tails and BIPS
//! avoidance probabilities, first exactly on the Petersen graph, then statistically on a
//! larger random regular graph.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example duality_check
//! ```

use cobra::core::cobra::Branching;
use cobra::core::duality;
use cobra::graph::generators;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k2 = Branching::fixed(2)?;

    // Exact check on the Petersen graph for one (C, v) pair, all t up to 8.
    let petersen = generators::petersen()?;
    let cobra_tail = duality::exact_cobra_hit_tail(&petersen, &[0], 7, k2, 8)?;
    let bips_avoid = duality::exact_bips_avoidance(&petersen, 7, &[0], k2, 8)?;
    println!("Petersen graph, C = {{0}}, v = 7:");
    println!(
        "{:>3}  {:>22}  {:>22}  {:>10}",
        "t", "P(Hit_C(v) > t)", "P(C cap A_t = empty)", "|diff|"
    );
    for (t, (a, b)) in cobra_tail.iter().zip(bips_avoid.iter()).enumerate() {
        println!("{t:>3}  {a:>22.12}  {b:>22.12}  {:>10.2e}", (a - b).abs());
    }

    // Exhaustive exact check over all ordered pairs on a few small graphs.
    for (name, graph) in [
        ("triangle", generators::triangle()?),
        ("cycle-6", generators::cycle(6)?),
        ("cube-Q3", generators::hypercube(3)?),
    ] {
        let report = duality::verify_duality_exact(&graph, k2, 8)?;
        println!(
            "{name}: max |difference| over {} comparisons = {:.2e}",
            report.comparisons, report.max_abs_difference
        );
    }

    // Statistical check on a 256-vertex random 3-regular graph.
    let mut rng = ChaCha12Rng::seed_from_u64(4);
    let big = generators::connected_random_regular(256, 3, &mut rng)?;
    println!("random 3-regular graph on 256 vertices (Monte Carlo, 10k trials per side):");
    for t in [2usize, 4, 8, 12] {
        let check = duality::verify_duality_monte_carlo(&big, &[0], 128, k2, t, 10_000, &mut rng)?;
        println!(
            "  t = {t:>2}: COBRA tail {:.4} vs BIPS avoidance {:.4}   z = {:+.2}",
            check.cobra_tail, check.bips_avoidance, check.z_score
        );
    }
    println!("all |z| values stay within statistical noise, as Theorem 4 demands");
    Ok(())
}
