//! Quickstart: generate an expander, analyse its spectrum, run COBRA and BIPS on it, and
//! compare the measured round counts with the paper's `log n / (1-λ)³` budget.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cobra::core::cobra::{Branching, CobraProcess};
use cobra::core::process::run_until_complete;
use cobra::core::theory::TheoryBounds;
use cobra::core::{cover, infection};
use cobra::graph::generators;
use cobra::stats::summary::Summary;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha12Rng::seed_from_u64(2016);

    // 1. Build a random 4-regular expander on 1024 vertices.
    let n = 1024;
    let graph = generators::connected_random_regular(n, 4, &mut rng)?;
    println!("graph: random 4-regular, n = {n}, m = {}", graph.num_edges());

    // 2. Spectral profile: the paper's lambda and the resulting round budget.
    let profile = cobra::spectral::analyze(&graph)?;
    let bounds = TheoryBounds::from_profile(&profile);
    println!(
        "lambda = {:.4}, spectral gap = {:.4}, Theorem 1 budget T = log n/(1-lambda)^3 = {:.1}",
        profile.lambda_abs,
        profile.spectral_gap(),
        bounds.cobra_cover
    );
    println!(
        "gap hypothesis 1-lambda >= sqrt(log n / n): {}",
        if profile.satisfies_gap_hypothesis(1.0) { "satisfied" } else { "NOT satisfied" }
    );

    // 3. One COBRA run, step by step.
    let mut process = CobraProcess::new(&graph, 0, Branching::fixed(2)?)?;
    let rounds = run_until_complete(&mut process, &mut rng, 100_000)
        .expect("an expander is covered quickly");
    println!("single COBRA (k=2) run covered all {n} vertices in {rounds} rounds");

    // 4. Monte-Carlo estimates of the cover and infection times.
    let trials = 30;
    let mut cover_summary = Summary::new();
    let mut infection_summary = Summary::new();
    for _ in 0..trials {
        cover_summary.record(
            cover::cover_time(&graph, 0, Branching::fixed(2)?, 100_000, &mut rng)?.rounds as f64,
        );
        infection_summary.record(
            infection::infection_time(&graph, 0, Branching::fixed(2)?, 100_000, &mut rng)?.rounds
                as f64,
        );
    }
    println!(
        "over {trials} trials: COBRA cover time {:.1} +- {:.1}, BIPS infection time {:.1} +- {:.1}",
        cover_summary.mean(),
        cover_summary.std_dev(),
        infection_summary.mean(),
        infection_summary.std_dev()
    );
    println!(
        "ln n = {:.1}; both measured times are small multiples of it, far below the budget {:.1}",
        (n as f64).ln(),
        bounds.cobra_cover
    );
    Ok(())
}
