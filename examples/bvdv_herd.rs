//! The BVDV scenario the paper cites as real-world motivation for BIPS: a persistently
//! infected animal ("PI") is introduced into an infection-free herd and keeps re-infecting its
//! contacts, so the infection never dies out and eventually reaches every animal.
//!
//! The herd contact network is modelled as an Erdős–Rényi graph over pens plus a few random
//! long-range contacts, and the run compares BIPS (persistent source) with the plain discrete
//! SIS contact process (no persistent source), which regularly goes extinct.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example bvdv_herd
//! ```

use cobra::core::baselines::contact::{ContactParameters, ContactProcess};
use cobra::core::bips::BipsProcess;
use cobra::core::cobra::Branching;
use cobra::core::process::{run_until_complete, SpreadingProcess};
use cobra::graph::{generators, ops};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha12Rng::seed_from_u64(1997); // the year of the BVDV simulation paper
    let herd_size = 200;

    // Herd contact network: dense-ish random contacts; resample until connected so that every
    // animal can eventually be reached.
    let herd = loop {
        let candidate = generators::erdos_renyi_gnp(herd_size, 0.04, &mut rng)?;
        if ops::is_connected(&candidate) && candidate.min_degree().unwrap_or(0) >= 1 {
            break candidate;
        }
    };
    let stats = ops::degree_stats(&herd).expect("non-empty herd");
    println!(
        "herd contact network: {} animals, {} contacts, degree {:.1} on average (min {}, max {})",
        herd.num_vertices(),
        herd.num_edges(),
        stats.mean,
        stats.min,
        stats.max
    );

    // One persistently infected animal (vertex 0) enters the herd: BIPS dynamics.
    let mut bips = BipsProcess::new(&herd, 0, Branching::fixed(2)?)?;
    let rounds = run_until_complete(&mut bips, &mut rng, 1_000_000)
        .expect("the persistent source eventually infects the whole herd");
    println!(
        "BIPS (persistent PI animal): every animal infected simultaneously after {rounds} rounds"
    );

    // The same herd without a persistent source: a discrete SIS contact process that can (and
    // usually does) die out under the same contact intensity.
    let params = ContactParameters::new(0.08, 0.5)?;
    let mut extinct_runs = 0;
    let mut completed_runs = 0;
    let trials = 50;
    for _ in 0..trials {
        let mut sis = ContactProcess::new(&herd, 0, params, false)?;
        let mut outcome = "ran out of budget";
        for _ in 0..5_000 {
            sis.step(&mut rng);
            if sis.extinct() {
                extinct_runs += 1;
                outcome = "extinct";
                break;
            }
            if sis.is_complete() {
                completed_runs += 1;
                outcome = "fully infected";
                break;
            }
        }
        let _ = outcome;
    }
    println!(
        "plain SIS without the persistent animal ({trials} runs): {extinct_runs} extinctions, \
         {completed_runs} full infections"
    );
    println!(
        "the persistent source is what turns a process that can die out into one that w.h.p. \
         infects everyone — exactly the role it plays in the paper's analysis"
    );
    Ok(())
}
