//! Regression tests for the object-safe process API: `ProcessSpec` values instantiate every
//! process as `Box<dyn SpreadingProcess>`, heterogeneous collections run through the shared
//! measurement entry points, and spec round-trips hold through the public facade crate.

use cobra::core::process::{run_until_complete, SpreadingProcess};
use cobra::core::sim::{ActiveCountTrace, Runner, StopReason};
use cobra::core::spec::ProcessSpec;
use cobra::graph::generators;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn rng(seed: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(seed)
}

/// One spec per process implementation — seven processes, eight specs (both COBRA
/// branching modes).
fn all_process_specs() -> Vec<ProcessSpec> {
    vec![
        ProcessSpec::cobra(2).unwrap(),
        ProcessSpec::cobra_fractional(0.5).unwrap(),
        ProcessSpec::bips(2).unwrap(),
        ProcessSpec::random_walk(),
        ProcessSpec::multiple_walks(6),
        ProcessSpec::push(),
        ProcessSpec::push_pull(),
        // Aggressive parameters with a persistent source, so completion is fast and certain.
        ProcessSpec::contact(0.8, 0.1).unwrap(),
    ]
}

#[test]
fn heterogeneous_boxed_processes_run_to_completion() {
    let graph = generators::complete(24).unwrap();
    let mut processes: Vec<Box<dyn SpreadingProcess + Send + '_>> = all_process_specs()
        .iter()
        .map(|spec| spec.build(&graph).expect("every spec builds on K_24"))
        .collect();
    assert_eq!(processes.len(), 8);
    let mut r = rng(1);
    for process in &mut processes {
        assert_eq!(process.round(), 0);
        assert_eq!(process.num_active(), 1);
        let rounds = run_until_complete(process.as_mut(), &mut r, 1_000_000)
            .expect("every process completes on a small complete graph");
        assert!(process.is_complete());
        assert_eq!(process.round(), rounds);
    }
    // The same boxes are reusable after reset — Monte-Carlo loops rely on this.
    for process in &mut processes {
        process.reset();
        assert_eq!(process.round(), 0);
        assert!(!process.is_complete());
    }
}

#[test]
fn the_shared_runner_drives_every_spec() {
    let graph = generators::complete(24).unwrap();
    let runner = Runner::new(1_000_000);
    let mut r = rng(2);
    for spec in all_process_specs() {
        let outcome = runner.run_spec(&spec, &graph, &mut r).expect("spec builds");
        assert_eq!(outcome.reason, StopReason::Completed, "{spec} must complete");
        assert_eq!(outcome.num_vertices, 24);
        assert!(outcome.rounds > 0);
    }
}

#[test]
fn cached_active_counts_match_a_recount_through_dyn() {
    let graph = generators::connected_random_regular(40, 3, &mut rng(3)).unwrap();
    let mut r = rng(4);
    for spec in all_process_specs() {
        let mut process = spec.build(&graph).expect("spec builds");
        for _ in 0..25 {
            process.step(&mut r);
            let recount = process.active().count();
            assert_eq!(
                process.num_active(),
                recount,
                "{spec}: cached num_active diverged from the active bitset at round {}",
                process.round()
            );
            let mut walked = 0usize;
            process.for_each_active(&mut |_| walked += 1);
            assert_eq!(walked, recount, "{spec}: for_each_active disagrees with the bitset");
        }
    }
}

#[test]
fn observers_work_on_dynamically_built_processes() {
    let graph = generators::complete(32).unwrap();
    let mut r = rng(5);
    for spec in all_process_specs() {
        let mut process = spec.build(&graph).expect("spec builds");
        let mut trace = ActiveCountTrace::new();
        let outcome =
            Runner::new(1_000_000).run_observed(process.as_mut(), &mut r, &mut [&mut trace]);
        assert!(outcome.completed(), "{spec} must complete");
        assert_eq!(trace.trace().len(), outcome.rounds + 1);
        assert_eq!(trace.trace()[0], 1, "{spec} starts with one active vertex");
    }
}

#[test]
fn spec_round_trips_through_text_and_json() {
    for spec in all_process_specs() {
        let text = spec.to_string();
        let reparsed: ProcessSpec = text.parse().expect("canonical syntax parses");
        assert_eq!(reparsed, spec, "CLI round trip through {text:?}");
        let json = serde_json::to_string(&spec).unwrap();
        let deserialized: ProcessSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(deserialized, spec, "serde round trip through {json}");
    }
}
