//! Black-box conformance suite for `repro serve`: every test spawns the real server on an
//! ephemeral port and drives it over an actual TCP socket, exactly like a scripted client.
//!
//! The load-bearing property is **bit-identity**: a job submitted over the socket must
//! produce per-trial outcomes and a summary record byte-for-byte equal to what the
//! `repro --process` CLI path computes for the same (spec, graph, trials, seed, budget) —
//! across all seven processes, wrapper stacks (faults, adversary, defense, churn),
//! concurrent clients, and cache hits.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cobra::core::sim::{CoverageTrace, FirstVisitTimes, Observer, Runner};
use cobra::core::CoreError;
use cobra::experiments::driver;
use cobra::experiments::serve::cache::GraphCache;
use cobra::experiments::serve::protocol::{self, JobParams, TrialTrace};
use cobra::experiments::serve::{spawn, ServeConfig, ServerHandle};
use cobra::graph::generators::GraphFamily;
use cobra::stats::parallel::TrialConfig;
use cobra::stats::rng::SeedSequence;
use serde::Value;

// ---------------------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------------------

fn server(workers: usize, cache_bytes: usize, queue_capacity: usize) -> ServerHandle {
    spawn(&ServeConfig { port: 0, workers, cache_bytes, queue_capacity })
        .expect("ephemeral-port server must spawn")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to served port");
        stream.set_read_timeout(Some(Duration::from_secs(60))).expect("read timeout");
        Client { reader: BufReader::new(stream.try_clone().expect("clone stream")), writer: stream }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("write request");
        self.writer.write_all(b"\n").expect("write newline");
    }

    fn recv_opt(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            // A reset is still "the server closed on us" as far as the protocol goes.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => None,
            Err(e) => panic!("read from server: {e}"),
        }
    }

    fn recv(&mut self) -> String {
        self.recv_opt().expect("server closed the connection unexpectedly")
    }

    fn request(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn json_object(line: &str) -> Vec<(String, Value)> {
    let value: Value = serde_json::from_str(line)
        .unwrap_or_else(|e| panic!("server line is not JSON: {line}: {e}"));
    value.as_object().unwrap_or_else(|| panic!("server line is not an object: {line}")).to_vec()
}

fn json_str(line: &str, name: &str) -> String {
    let entries = json_object(line);
    entries
        .iter()
        .find(|(key, _)| key == name)
        .and_then(|(_, value)| value.as_str())
        .unwrap_or_else(|| panic!("no string field {name:?} in {line}"))
        .to_string()
}

fn json_u64(line: &str, name: &str) -> u64 {
    let entries = json_object(line);
    entries
        .iter()
        .find(|(key, _)| key == name)
        .and_then(|(_, value)| value.as_f64())
        .unwrap_or_else(|| panic!("no numeric field {name:?} in {line}")) as u64
}

fn event_of(line: &str) -> String {
    json_str(line, "event")
}

fn is_terminal(line: &str) -> bool {
    matches!(event_of(line).as_str(), "summary" | "job-failed" | "job-cancelled")
}

fn submit_line(params: &JobParams) -> String {
    format!(
        "{{\"cmd\":\"submit\",\"spec\":\"{}\",\"graph\":\"{}\",\"trials\":{},\"seed\":{},\
         \"max_rounds\":{},\"trace\":{}}}",
        params.spec, params.family, params.trials, params.seed, params.max_rounds, params.trace
    )
}

fn submit(client: &mut Client, params: &JobParams) -> u64 {
    let reply = client.request(&submit_line(params));
    assert_eq!(event_of(&reply), "accepted", "{reply}");
    json_u64(&reply, "job")
}

fn stream_results(client: &mut Client, job: u64) -> Vec<String> {
    client.send(&format!("{{\"cmd\":\"results\",\"job\":{job}}}"));
    let mut lines = Vec::new();
    loop {
        let line = client.recv();
        let done = is_terminal(&line);
        lines.push(line);
        if done {
            return lines;
        }
    }
}

fn params(spec: &str, graph: &str, trials: usize, seed: u64, max_rounds: usize) -> JobParams {
    JobParams {
        spec: spec.parse().expect("test spec parses"),
        family: graph.parse().expect("test graph parses"),
        trials,
        seed,
        max_rounds,
        trace: false,
    }
}

/// Recomputes exactly what the `repro --process` CLI path measures for `params` — same
/// seed-sequence derivation, same churn routing — and renders it through the same
/// [`protocol`] event builders the server uses. Byte equality against the served stream is
/// therefore the full bit-identity check.
fn expected_lines(job: u64, params: &JobParams) -> Vec<String> {
    let seq = SeedSequence::new(params.seed).child("ad-hoc");
    let mut rng = seq.trial_rng("instance", 0);
    let graph = params.family.instantiate(&mut rng).expect("conformance graphs instantiate");
    let runner = Runner::new(params.max_rounds);
    let label = format!("{}@{}", params.spec, params.family);
    let churned = params.spec.fault_plan().and_then(|plan| plan.churn).is_some();
    let outcomes = if churned {
        driver::run_adverse_trials(
            &params.family,
            &params.spec,
            &runner,
            &seq,
            &label,
            TrialConfig::parallel(params.trials),
        )
    } else {
        driver::run_spec_trials(
            &graph,
            &params.spec,
            &runner,
            &seq,
            &label,
            TrialConfig::parallel(params.trials),
        )
    };
    let mut lines: Vec<String> = outcomes
        .iter()
        .enumerate()
        .map(|(index, outcome)| protocol::trial_event(job, index, outcome, None))
        .collect();
    lines.push(protocol::summary_event(job, params, &outcomes));
    lines
}

// ---------------------------------------------------------------------------------------
// Bit-identity
// ---------------------------------------------------------------------------------------

/// All seven processes plus faulted / adversarial / defended / churned wrapper stacks.
const CONFORMANCE_SPECS: &[&str] = &[
    "cobra:k=2",
    "bips:k=2",
    "walk",
    "multiwalk:w=8",
    "push",
    "pushpull",
    "contact:p=0.8,q=0.1",
    "cobra:k=2+drop=0.1+crash=5%",
    "cobra:k=2+gedrop=0.05,0.2,0.4",
    "cobra:k=2+adv=topdeg:budget=5%",
    "cobra:k=2+adv=topdeg:budget=5%+def=boostk:trigger=stall,w=8,cap=4",
    "cobra:k=2+churn=8",
];

#[test]
fn served_jobs_are_bit_identical_to_the_cli_path() {
    let handle = server(3, 32 << 20, 64);
    let mut client = Client::connect(handle.addr());
    for spec in CONFORMANCE_SPECS {
        let params = params(spec, "complete:n=32", 3, 2016, 4000);
        let job = submit(&mut client, &params);
        let served = stream_results(&mut client, job);
        assert_eq!(served, expected_lines(job, &params), "bit-identity broke for {spec}");
    }
    handle.shutdown();
}

#[test]
fn traced_jobs_carry_coverage_deltas_without_perturbing_outcomes() {
    let handle = server(2, 32 << 20, 64);
    let mut client = Client::connect(handle.addr());
    let mut traced = params("cobra:k=2", "complete:n=32", 3, 99, 4000);
    traced.trace = true;
    let job = submit(&mut client, &traced);
    let served = stream_results(&mut client, job);

    // Expected: the same per-trial RNG streams, observed locally.
    let seq = SeedSequence::new(traced.seed).child("ad-hoc");
    let graph = traced.family.instantiate(&mut seq.trial_rng("instance", 0)).unwrap();
    let runner = Runner::new(traced.max_rounds);
    let label = format!("{}@{}", traced.spec, traced.family);
    let mut expected = Vec::new();
    let mut outcomes = Vec::new();
    for index in 0..traced.trials {
        let mut rng = seq.trial_rng(&label, index as u64);
        let mut process = traced.spec.build(&graph).unwrap();
        let mut coverage = CoverageTrace::new();
        let mut visits = FirstVisitTimes::new();
        let mut observers: [&mut dyn Observer; 2] = [&mut coverage, &mut visits];
        let outcome = runner.run_observed(process.as_mut(), &mut rng, &mut observers);
        let trace =
            TrialTrace { coverage_deltas: coverage.deltas(), cover_time: visits.cover_time() };
        expected.push(protocol::trial_event(job, index, &outcome, Some(&trace)));
        outcomes.push(outcome);
    }
    expected.push(protocol::summary_event(job, &traced, &outcomes));
    assert_eq!(served, expected);

    // Observers are passive: the same job without trace yields the same outcomes.
    let untraced = params("cobra:k=2", "complete:n=32", 3, 99, 4000);
    let job = submit(&mut client, &untraced);
    let served = stream_results(&mut client, job);
    assert_eq!(served, expected_lines(job, &untraced));
    handle.shutdown();
}

#[test]
fn concurrent_shuffled_submissions_stay_deterministic() {
    let handle = server(4, 32 << 20, 64);
    let addr = handle.addr();
    // The same six jobs, submitted by three clients in three different orders.
    let jobs: Vec<JobParams> = vec![
        params("cobra:k=2", "complete:n=32", 3, 1, 4000),
        params("push", "complete:n=32", 3, 2, 4000),
        params("bips:k=2", "complete:n=24", 3, 3, 4000),
        params("walk", "complete:n=16", 3, 4, 50_000),
        params("cobra:k=2+drop=0.1", "complete:n=32", 3, 5, 4000),
        params("cobra:k=2+churn=8", "complete:n=24", 3, 1, 4000),
    ];
    let orders: [[usize; 6]; 3] = [[0, 1, 2, 3, 4, 5], [5, 3, 1, 4, 2, 0], [2, 0, 5, 1, 3, 4]];
    let clients: Vec<_> = orders
        .into_iter()
        .map(|order| {
            let jobs = jobs.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                // Submit everything first so the four workers genuinely interleave.
                let ids: Vec<(u64, usize)> =
                    order.iter().map(|&i| (submit(&mut client, &jobs[i]), i)).collect();
                for (job, i) in ids {
                    let served = stream_results(&mut client, job);
                    assert_eq!(
                        served,
                        expected_lines(job, &jobs[i]),
                        "job {i} diverged under concurrency"
                    );
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    handle.shutdown();
}

// ---------------------------------------------------------------------------------------
// Cache observability
// ---------------------------------------------------------------------------------------

#[test]
fn cache_hits_misses_and_evictions_are_observable_via_stats() {
    // Budget: exactly two instances of this family fit.
    let family: GraphFamily = "random-regular:n=64,r=4".parse().unwrap();
    let instance_bytes = {
        let seq = SeedSequence::new(1).child("ad-hoc");
        family.instantiate(&mut seq.trial_rng("instance", 0)).unwrap().heap_bytes()
    };
    let handle = server(1, 2 * instance_bytes + instance_bytes / 2, 64);
    let mut client = Client::connect(handle.addr());
    // Same (family, seed) twice: one miss then one hit. A single worker serializes jobs,
    // and streaming each job's results to the end makes the ordering deterministic.
    for seed in [1, 1, 2, 3] {
        let params = params("cobra:k=2", "random-regular:n=64,r=4", 2, seed, 100_000);
        let job = submit(&mut client, &params);
        let served = stream_results(&mut client, job);
        assert_eq!(served, expected_lines(job, &params), "seed {seed} diverged");
    }
    let stats = client.request("{\"cmd\":\"stats\"}");
    assert_eq!(event_of(&stats), "stats", "{stats}");
    assert_eq!(json_u64(&stats, "cache_hits"), 1, "{stats}");
    assert_eq!(json_u64(&stats, "cache_misses"), 3, "{stats}");
    // Seed 3's insert pushed the residency over budget: the LRU entry (seed 1) went.
    assert_eq!(json_u64(&stats, "cache_evictions"), 1, "{stats}");
    assert_eq!(json_u64(&stats, "cache_entries"), 2, "{stats}");
    assert!(json_u64(&stats, "cache_bytes") <= json_u64(&stats, "cache_capacity"), "{stats}");
    assert_eq!(json_u64(&stats, "done"), 4, "{stats}");
    handle.shutdown();
}

#[test]
fn cache_hits_perform_zero_graph_construction_work() {
    // CountingRng-style accounting at the cache boundary: a hit must neither invoke the
    // build closure nor draw a single RNG word.
    use cobra::core::counting::CountingRng;
    let cache = GraphCache::new(16 << 20);
    let family: GraphFamily = "random-regular:n=64,r=4".parse().unwrap();
    let seq = SeedSequence::new(5).child("ad-hoc");
    let mut draws = 0u64;
    let built = cache
        .get_or_build(&family, 5, || {
            let mut rng = CountingRng::new(seq.trial_rng("instance", 0));
            let graph = family.instantiate(&mut rng);
            draws = rng.count();
            graph
        })
        .expect("first lookup builds");
    assert!(draws > 0, "building a random-regular instance must consume randomness");
    let mut hit_invoked_build = false;
    let hit = cache
        .get_or_build(&family, 5, || {
            hit_invoked_build = true;
            let mut rng = CountingRng::new(seq.trial_rng("instance", 0));
            let graph = family.instantiate(&mut rng);
            draws += rng.count();
            graph
        })
        .expect("hit");
    assert!(!hit_invoked_build, "a cache hit must not re-run graph construction");
    let draws_after_first = draws;
    assert_eq!(draws, draws_after_first, "a cache hit must draw zero RNG words");
    assert!(std::sync::Arc::ptr_eq(&built, &hit), "hit must return the resident instance");
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
}

// ---------------------------------------------------------------------------------------
// Error paths
// ---------------------------------------------------------------------------------------

#[test]
fn malformed_invalid_and_unknown_requests_get_structured_errors() {
    let handle = server(1, 1 << 20, 8);
    let mut client = Client::connect(handle.addr());
    let cases = [
        ("{oops", "malformed-request"),
        ("[1,2,3]", "malformed-request"),
        ("{\"cmd\":\"frobnicate\"}", "invalid-request"),
        ("{\"spec\":\"cobra:k=2\"}", "invalid-request"),
        ("{\"cmd\":\"submit\",\"spec\":\"frisbee\"}", "invalid-spec"),
        ("{\"cmd\":\"submit\",\"spec\":\"cobra:k=2+drop=2\"}", "invalid-spec"),
        ("{\"cmd\":\"submit\",\"spec\":\"cobra:k=2\",\"graph\":\"mystery:n=2\"}", "invalid-graph"),
        ("{\"cmd\":\"submit\",\"spec\":\"cobra:k=2\",\"trials\":0}", "invalid-request"),
        ("{\"cmd\":\"submit\",\"spec\":\"cobra:k=2\",\"frobs\":true}", "invalid-request"),
        ("{\"cmd\":\"status\",\"job\":424242}", "unknown-job"),
        ("{\"cmd\":\"results\",\"job\":424242}", "unknown-job"),
        ("{\"cmd\":\"cancel\",\"job\":424242}", "unknown-job"),
    ];
    for (request, code) in cases {
        let reply = client.request(request);
        assert_eq!(event_of(&reply), "error", "{request} -> {reply}");
        assert_eq!(json_str(&reply, "code"), code, "{request} -> {reply}");
    }
    // The connection survived all of that: a well-formed request still works.
    let job = submit(&mut client, &params("cobra:k=2", "complete:n=16", 1, 1, 1000));
    assert!(is_terminal(stream_results(&mut client, job).last().unwrap()));
    handle.shutdown();
}

#[test]
fn oversized_requests_are_rejected_and_the_connection_closed() {
    let handle = server(1, 1 << 20, 8);
    let mut client = Client::connect(handle.addr());
    let huge = format!("{{\"cmd\":\"submit\",\"spec\":\"{}\"}}", "a".repeat(80_000));
    assert!(huge.len() > protocol::MAX_REQUEST_BYTES);
    let reply = client.request(&huge);
    assert_eq!(event_of(&reply), "error", "{reply}");
    assert_eq!(json_str(&reply, "code"), "oversized-request", "{reply}");
    assert_eq!(client.recv_opt(), None, "oversized request must close the connection");
    handle.shutdown();
}

#[test]
fn full_queues_reject_submissions_with_backpressure_reasons() {
    // Capacity 0 deterministically rejects every enqueue attempt.
    let handle = server(1, 1 << 20, 0);
    let mut client = Client::connect(handle.addr());
    let reply = client.request(&submit_line(&params("cobra:k=2", "complete:n=16", 1, 1, 1000)));
    assert_eq!(event_of(&reply), "error", "{reply}");
    assert_eq!(json_str(&reply, "code"), "queue-full", "{reply}");
    assert!(json_str(&reply, "message").contains("capacity"), "{reply}");
    // Batches are atomic: nothing from a rejected batch is enqueued.
    let batch = "{\"cmd\":\"batch\",\"specs\":[\"cobra:k=2\",\"push\"],\
                 \"graphs\":[\"complete:n=16\"],\"trials\":1}";
    let reply = client.request(batch);
    assert_eq!(json_str(&reply, "code"), "queue-full", "{reply}");
    let stats = client.request("{\"cmd\":\"stats\"}");
    assert_eq!(json_u64(&stats, "jobs"), 0, "rejected submissions must not create jobs");
    handle.shutdown();
}

#[test]
fn build_failures_return_structured_records_and_never_kill_workers() {
    let handle = server(1, 8 << 20, 64);
    let mut client = Client::connect(handle.addr());
    // Start vertex past the instance: VertexOutOfRange, byte-exact.
    let bad_start = params("push:start=500", "complete:n=32", 3, 1, 1000);
    let job = submit(&mut client, &bad_start);
    let served = stream_results(&mut client, job);
    let expected = protocol::job_failed_event(
        job,
        &CoreError::VertexOutOfRange { vertex: 500, num_vertices: 32 },
    );
    assert_eq!(served, vec![expected]);
    // A clause combination rejected at build time (per-edge channels under a policy layer).
    let bad_combo = params(
        "cobra:k=2+gedrop=0.05,0.2,0.4:scope=edge+adv=topdeg:budget=5%",
        "complete:n=32",
        3,
        1,
        1000,
    );
    let job = submit(&mut client, &bad_combo);
    let served = stream_results(&mut client, job);
    assert_eq!(served.len(), 1, "{served:?}");
    assert_eq!(event_of(&served[0]), "job-failed", "{served:?}");
    assert_eq!(json_str(&served[0], "code"), "invalid-spec", "{served:?}");
    // A family that parses but cannot instantiate (missing edge-list file).
    let bad_graph = params("cobra:k=2", "file:path=/nonexistent/serve.edges", 1, 1, 1000);
    let job = submit(&mut client, &bad_graph);
    let served = stream_results(&mut client, job);
    assert_eq!(event_of(&served[0]), "job-failed", "{served:?}");
    assert_eq!(json_str(&served[0], "code"), "unsuitable-graph", "{served:?}");
    // The single worker survived all three failures: a good job still runs to completion.
    let good = params("cobra:k=2", "complete:n=32", 2, 1, 1000);
    let job = submit(&mut client, &good);
    assert_eq!(stream_results(&mut client, job), expected_lines(job, &good));
    let stats = client.request("{\"cmd\":\"stats\"}");
    assert_eq!(json_u64(&stats, "failed"), 3, "{stats}");
    assert_eq!(json_u64(&stats, "done"), 1, "{stats}");
    handle.shutdown();
}

// ---------------------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------------------

#[test]
fn cancel_hits_queued_jobs_immediately_and_running_jobs_at_a_trial_boundary() {
    let handle = server(1, 8 << 20, 8);
    let mut client = Client::connect(handle.addr());
    // A long job (many tiny trials) occupies the single worker...
    let long = params("cobra:k=2", "complete:n=16", 100_000, 1, 100);
    let long_job = submit(&mut client, &long);
    // ...so this one stays queued and a cancel reaches it before any worker does.
    let queued = params("push", "complete:n=16", 1, 1, 100);
    let queued_job = submit(&mut client, &queued);
    let ack = client.request(&format!("{{\"cmd\":\"cancel\",\"job\":{queued_job}}}"));
    assert_eq!(event_of(&ack), "cancel", "{ack}");
    assert_eq!(json_str(&ack, "outcome"), "cancelled", "{ack}");
    assert_eq!(
        stream_results(&mut client, queued_job),
        vec![protocol::job_cancelled_event(queued_job)]
    );
    // Wait until the long job is demonstrably mid-flight, then cancel it.
    let mut attempts = 0;
    loop {
        let status = client.request(&format!("{{\"cmd\":\"status\",\"job\":{long_job}}}"));
        if json_str(&status, "state") == "running" && json_u64(&status, "trials_done") >= 1 {
            break;
        }
        attempts += 1;
        assert!(attempts < 1000, "long job never started running: {status}");
        std::thread::sleep(Duration::from_millis(5));
    }
    let ack = client.request(&format!("{{\"cmd\":\"cancel\",\"job\":{long_job}}}"));
    assert_eq!(json_str(&ack, "outcome"), "requested", "{ack}");
    let served = stream_results(&mut client, long_job);
    assert_eq!(served.last().unwrap(), &protocol::job_cancelled_event(long_job));
    assert!(
        served.len() < 100_000,
        "the job must have been abandoned mid-flight, not run to completion"
    );
    let status = client.request(&format!("{{\"cmd\":\"status\",\"job\":{long_job}}}"));
    assert_eq!(json_str(&status, "state"), "cancelled", "{status}");
    // Cancelling a terminal job is an explicit no-op.
    let ack = client.request(&format!("{{\"cmd\":\"cancel\",\"job\":{long_job}}}"));
    assert_eq!(json_str(&ack, "outcome"), "already-terminal", "{ack}");
    let stats = client.request("{\"cmd\":\"stats\"}");
    assert_eq!(json_u64(&stats, "cancelled"), 2, "{stats}");
    handle.shutdown();
}

// ---------------------------------------------------------------------------------------
// Batch fan-out
// ---------------------------------------------------------------------------------------

#[test]
fn batches_expand_the_matrix_and_every_job_matches_the_cli() {
    let handle = server(2, 8 << 20, 64);
    let mut client = Client::connect(handle.addr());
    let reply = client.request(
        "{\"cmd\":\"batch\",\"specs\":[\"cobra:k=2\",\"push\"],\
         \"graphs\":[\"complete:n=16\",\"complete:n=24\"],\"trials\":2,\"seed\":11,\
         \"max_rounds\":2000}",
    );
    assert_eq!(event_of(&reply), "batch-accepted", "{reply}");
    let entries = json_object(&reply);
    let ids: Vec<u64> = entries
        .iter()
        .find(|(key, _)| key == "jobs")
        .and_then(|(_, value)| value.as_array())
        .expect("jobs array")
        .iter()
        .map(|v| v.as_f64().expect("job id") as u64)
        .collect();
    assert_eq!(ids.len(), 4, "2 specs x 2 graphs");
    let matrix = [
        ("cobra:k=2", "complete:n=16"),
        ("cobra:k=2", "complete:n=24"),
        ("push", "complete:n=16"),
        ("push", "complete:n=24"),
    ];
    for (&job, &(spec, graph)) in ids.iter().zip(&matrix) {
        let expected = params(spec, graph, 2, 11, 2000);
        assert_eq!(
            stream_results(&mut client, job),
            expected_lines(job, &expected),
            "batch job {spec}@{graph} diverged from the CLI path"
        );
    }
    handle.shutdown();
}
