//! PR-9 heterogeneous-workload acceptance: per-edge Gilbert–Elliott channels, the `file:`
//! loader with its binary CSR cache, and degree-proportional budgets.
//!
//! Three contracts are pinned here, at the integration level:
//!
//! 1. **Degenerate distributional equivalence** — the burst-length-1 per-edge channel
//!    (`gedrop=1,1,f,f:scope=edge`) makes every edge's channel alternate deterministically
//!    in lockstep with equal state losses, so each transmission is lost i.i.d. with
//!    probability `f`, exactly like `drop=f`. Unlike the *global* degenerate channel this
//!    is **not** bit-identical (edge losses are consulted per transmission after target
//!    sampling, a different draw order), so the property is distributional: matched means
//!    over a trial population.
//! 2. **File round-trips are bit-identical** — a generated Chung–Lu instance written as an
//!    edge list, loaded from text, and re-loaded through the binary CSR cache is the same
//!    graph object producing the same trajectories.
//! 3. **Thread invariance on the full PR-9 stack** — `--threads 1..8` trajectories are
//!    bit-identical on a file-loaded Chung–Lu instance driven with degree budgets *and*
//!    per-edge channels (the bank advances on the reserved fault stream, so worker count
//!    is unobservable).

use std::path::PathBuf;

use cobra::core::sim::Runner;
use cobra::core::spec::ProcessSpec;
use cobra::core::CountingRng;
use cobra::experiments::driver;
use cobra::graph::generators::{self, GraphFamily};
use cobra::graph::io;
use cobra::stats::parallel::TrialConfig;
use cobra::stats::rng::SeedSequence;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Mean completion rounds of `spec` on `graph` over `trials` seeded runs (the spec must
/// complete within the budget on every trial — monotone processes only).
fn mean_cover(graph: &cobra::graph::Graph, spec: &ProcessSpec, trials: u64, salt: u64) -> f64 {
    let mut total = 0usize;
    for seed in 0..trials {
        let mut process = spec.build(graph).expect("spec builds");
        let mut rng = ChaCha12Rng::seed_from_u64(seed ^ salt);
        total += cobra::core::process::run_until_complete(process.as_mut(), &mut rng, 100_000)
            .expect("monotone process completes");
    }
    total as f64 / trials as f64
}

fn assert_degenerate_edge_scope_matches_iid(graph: &cobra::graph::Graph, f: f64, salt: u64) {
    let iid: ProcessSpec = format!("push+drop={f}").parse().expect("iid spec parses");
    let edge: ProcessSpec =
        format!("push+gedrop=1,1,{f},{f}:scope=edge").parse().expect("edge spec parses");
    let trials = 150;
    let iid_mean = mean_cover(graph, &iid, trials, salt);
    let edge_mean = mean_cover(graph, &edge, trials, salt.rotate_left(17));
    let ratio = edge_mean / iid_mean;
    assert!(
        (0.75..=1.33).contains(&ratio),
        "f={f}: degenerate scope=edge must match drop=f distributionally, \
         iid {iid_mean:.2} vs edge {edge_mean:.2} (ratio {ratio:.3})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The degenerate per-edge channel is distributionally equivalent to i.i.d. drop
    /// across loss rates (monotone PUSH, so every trial completes and the mean is a
    /// complete-sample statistic).
    #[test]
    fn degenerate_edge_scope_matches_iid_drop(f in 0.05f64..0.4, salt in 0u64..1_000) {
        let graph = generators::complete(48).unwrap();
        assert_degenerate_edge_scope_matches_iid(&graph, f, salt);
    }
}

/// Fixed, deterministic smoke version at the E9/E12 acceptance loss rates.
#[test]
fn degenerate_edge_scope_matches_iid_drop_at_fixed_rates() {
    let graph = generators::complete(48).unwrap();
    for (f, salt) in [(0.1, 7u64), (0.25, 11)] {
        assert_degenerate_edge_scope_matches_iid(&graph, f, salt);
    }
}

/// A unique temp path per test (the cache lives next to the file, so tests must not
/// share paths).
fn temp_edge_file(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("cobra-hetero-{}-{name}.edges", std::process::id()));
    path
}

#[test]
fn file_loaded_graphs_are_bit_identical_through_text_and_cache() {
    let mut gen_rng = ChaCha12Rng::seed_from_u64(2016);
    let source = generators::connected_chung_lu(128, 3.0, 8.0, &mut gen_rng).unwrap();
    let path = temp_edge_file("roundtrip");
    let cache = PathBuf::from(format!("{}.csrcache", path.display()));
    let _ = std::fs::remove_file(&cache);
    std::fs::write(&path, io::to_edge_list(&source)).expect("temp dir is writable");

    let family = GraphFamily::File { path: path.display().to_string(), lenient: false };
    // First load parses the text and writes the cache; the second decodes the cache.
    let from_text = family.instantiate(&mut ChaCha12Rng::seed_from_u64(0)).unwrap();
    assert!(cache.exists(), "first load must write the CSR cache next to the source");
    let from_cache = family.instantiate(&mut ChaCha12Rng::seed_from_u64(1)).unwrap();
    assert_eq!(source, from_text, "text round-trip must be exact");
    assert_eq!(source, from_cache, "cache round-trip must be exact");

    // Same graph bits => same trajectory bits, through the full PR-9 spec stack.
    let spec: ProcessSpec = "cobra:k=deg:cap=4+gedrop=0.1,0.25,0.5:scope=edge".parse().unwrap();
    let run = |graph: &cobra::graph::Graph| {
        let mut process = spec.build(graph).expect("spec builds");
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        Runner::new(100_000).run(process.as_mut(), &mut rng)
    };
    let reference = run(&source);
    assert_eq!(run(&from_text), reference);
    assert_eq!(run(&from_cache), reference);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn thread_count_is_invisible_on_a_file_loaded_chung_lu_instance() {
    // The ISSUE's acceptance criterion, end to end: generate a Chung-Lu instance, ship it
    // through the file: loader, and drive degree budgets + per-edge channels through the
    // sharded stream engine at every worker count. Trajectories must be bit-identical.
    let mut gen_rng = ChaCha12Rng::seed_from_u64(99);
    let source = generators::connected_chung_lu(96, 3.0, 8.0, &mut gen_rng).unwrap();
    let path = temp_edge_file("threads");
    let cache = PathBuf::from(format!("{}.csrcache", path.display()));
    let _ = std::fs::remove_file(&cache);
    std::fs::write(&path, io::to_edge_list(&source)).expect("temp dir is writable");
    let graph = GraphFamily::File { path: path.display().to_string(), lenient: false }
        .instantiate(&mut ChaCha12Rng::seed_from_u64(0))
        .unwrap();

    let spec: ProcessSpec = "cobra:k=deg:cap=8+gedrop=0.1,0.25,0.5:scope=edge".parse().unwrap();
    let runner = Runner::new(100_000);
    let seq = SeedSequence::new(2016);
    let reference = driver::run_parallel_spec_trials(
        &graph,
        &spec,
        &runner,
        &seq,
        "hetero-threads",
        TrialConfig::sequential(6),
        1,
    );
    for threads in 2..=8 {
        let outcomes = driver::run_parallel_spec_trials(
            &graph,
            &spec,
            &runner,
            &seq,
            "hetero-threads",
            TrialConfig::sequential(6),
            threads,
        );
        assert_eq!(
            outcomes, reference,
            "trajectories must be bit-identical at {threads} worker threads"
        );
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn edge_bank_draws_zero_words_while_every_channel_is_good() {
    // `gedrop=0,…:scope=edge` attaches a real (lossy-parameter) bank whose channels can
    // never leave the good state: the wrapped process must draw exactly as many words per
    // round as the bare one — the bank costs zero RNG words while all edges are good, and
    // good-state transmissions consult it for free.
    let mut gen_rng = ChaCha12Rng::seed_from_u64(2016);
    let graph = generators::connected_random_regular(64, 4, &mut gen_rng).unwrap();
    for (bare_spec, wrapped_spec) in [
        ("push", "push+gedrop=0,0.25,0.5:scope=edge"),
        ("cobra:k=2", "cobra:k=2+gedrop=0,0.25,0.5:scope=edge"),
        ("cobra:k=deg:cap=3", "cobra:k=deg:cap=3+gedrop=0,0.25,0.5:scope=edge"),
    ] {
        let bare_spec: ProcessSpec = bare_spec.parse().unwrap();
        let wrapped_spec: ProcessSpec = wrapped_spec.parse().unwrap();
        for seed in 0..3u64 {
            let mut bare = bare_spec.build(&graph).expect("bare spec builds");
            let mut wrapped = wrapped_spec.build(&graph).expect("wrapped spec builds");
            let mut bare_rng = CountingRng::new(ChaCha12Rng::seed_from_u64(seed));
            let mut wrapped_rng = CountingRng::new(ChaCha12Rng::seed_from_u64(seed));
            for round in 1..=60 {
                bare.step(&mut bare_rng);
                wrapped.step(&mut wrapped_rng);
                let expected = bare_rng.take_count();
                assert_eq!(
                    wrapped_rng.take_count(),
                    expected,
                    "{wrapped_spec} seed {seed}: the all-good bank must be draw-free at \
                     round {round} (bare drew {expected})"
                );
                if bare.is_complete() {
                    break;
                }
            }
        }
    }
}
