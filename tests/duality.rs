//! Integration tests dedicated to Theorem 4 (the COBRA ↔ BIPS duality), run through the
//! public facade crate.

use cobra::core::cobra::Branching;
use cobra::core::duality;
use cobra::graph::generators;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

#[test]
fn duality_holds_exactly_on_a_zoo_of_small_graphs() {
    let k2 = Branching::fixed(2).unwrap();
    let zoo = vec![
        ("triangle", generators::triangle().unwrap()),
        ("path-4", generators::path(4).unwrap()),
        ("star-5", generators::star(5).unwrap()),
        ("cycle-5", generators::cycle(5).unwrap()),
        ("cycle-6", generators::cycle(6).unwrap()),
        ("diamond", generators::diamond().unwrap()),
        ("bull", generators::bull().unwrap()),
        ("complete-5", generators::complete(5).unwrap()),
        ("complete-bipartite-2-3", generators::complete_bipartite(2, 3).unwrap()),
        ("cube-Q3", generators::hypercube(3).unwrap()),
        ("binary-tree-h2", generators::binary_tree(2).unwrap()),
    ];
    for (name, graph) in zoo {
        let report = duality::verify_duality_exact(&graph, k2, 7).unwrap();
        assert!(
            report.max_abs_difference < 1e-10,
            "duality violated on {name}: {}",
            report.max_abs_difference
        );
    }
}

#[test]
fn duality_holds_exactly_for_every_branching_mode() {
    let graph = generators::cycle(6).unwrap();
    for branching in [
        Branching::fixed(1).unwrap(),
        Branching::fixed(2).unwrap(),
        Branching::fixed(4).unwrap(),
        Branching::fractional(0.0).unwrap(),
        Branching::fractional(0.5).unwrap(),
        Branching::fractional(1.0).unwrap(),
    ] {
        let report = duality::verify_duality_exact(&graph, branching, 8).unwrap();
        assert!(
            report.max_abs_difference < 1e-10,
            "duality violated for {branching:?}: {}",
            report.max_abs_difference
        );
    }
}

#[test]
fn duality_survives_a_monte_carlo_test_on_a_mid_sized_expander() {
    let mut rng = ChaCha12Rng::seed_from_u64(77);
    let graph = generators::connected_random_regular(128, 3, &mut rng).unwrap();
    let k2 = Branching::fixed(2).unwrap();
    for t in [1usize, 3, 6, 10] {
        let check =
            duality::verify_duality_monte_carlo(&graph, &[5], 70, k2, t, 4_000, &mut rng).unwrap();
        assert!(
            check.compatible(4.5),
            "z = {} at t = {t} (cobra {}, bips {})",
            check.z_score,
            check.cobra_tail,
            check.bips_avoidance
        );
    }
}

#[test]
fn tail_probabilities_decay_with_time_and_agree_at_t_zero() {
    // Beyond the identity itself, the two exact computations must both start at 1 (the start
    // set does not contain the target) and be non-increasing in t.
    let graph = generators::petersen().unwrap();
    let k2 = Branching::fixed(2).unwrap();
    let cobra = duality::exact_cobra_hit_tail(&graph, &[0, 1], 9, k2, 6).unwrap();
    let bips = duality::exact_bips_avoidance(&graph, 9, &[0, 1], k2, 6).unwrap();
    assert!((cobra[0] - 1.0).abs() < 1e-12);
    assert!((bips[0] - 1.0).abs() < 1e-12);
    for w in cobra.windows(2) {
        assert!(w[1] <= w[0] + 1e-12);
    }
    for (a, b) in cobra.iter().zip(bips.iter()) {
        assert!((a - b).abs() < 1e-10);
    }
}
