//! The adversary engine's oblivious policy must be invisible: for every fault plan `P`,
//! `spec+P+adv=oblivious` routes `P`'s clauses through the `AdversarialProcess` /
//! `AdversaryPolicy` machinery instead of the plain `FaultedProcess` wrapper — and the
//! two paths must evolve **bit for bit** identically under the same seeded RNG, for all
//! seven processes, on expanders and tori, across drop rates, sampled crash sets,
//! bursty channels and transient repair dynamics. Both paths share the same
//! `PlanDynamics` internally; these property tests pin that equivalence at the public
//! spec level so a refactor of either side cannot silently skew the E10 baselines.
//!
//! Zero-strength adaptive policies are held to the zero-fault standard of
//! `tests/fault_equivalence.rs`: a `topdeg` adversary with budget 0 and a `dropfront`
//! adversary with `f = 0` never touch the RNG and reproduce the bare process exactly.
//!
//! The defense engine is held to the same standard from the other side of the arms race:
//! `def=passive` and never-triggered `def=boostk`/`def=reseed` policies wrap every
//! process bit-identically and draw exactly zero extra RNG words per round — the
//! `DefendedProcess` inert path makes no hook calls at all.

use cobra::core::spec::ProcessSpec;
use cobra::graph::{generators, Graph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// One spec per process implementation (matching `fault_equivalence::all_specs`).
fn all_specs() -> Vec<ProcessSpec> {
    vec![
        ProcessSpec::cobra(2).unwrap(),
        ProcessSpec::cobra_fractional(0.4).unwrap().with_start(3),
        ProcessSpec::bips(2).unwrap().with_start(1),
        ProcessSpec::random_walk(),
        ProcessSpec::multiple_walks(5).with_start(2),
        ProcessSpec::push(),
        ProcessSpec::push_pull().with_start(4),
        ProcessSpec::contact(0.6, 0.3).unwrap(),
        "contact:p=0.2,q=0.7,transient".parse().unwrap(),
    ]
}

/// The oblivious plans routed through both paths: plain loss, sampled crashes, the
/// combination, a bursty channel and transient crash/repair dynamics.
fn oblivious_clause_sets() -> Vec<&'static str> {
    vec![
        "drop=0",
        "drop=0.15",
        "crash=10%",
        "drop=0.1+crash=5%",
        "gedrop=0.2,0.3,0.5",
        "crash=10%+repair=0.2",
    ]
}

/// Steps the reference build of `reference_spec` and the candidate build of
/// `candidate_spec` with identically seeded RNGs and asserts byte-identical evolution of
/// the active set, delta, coverage and completion.
fn assert_same_evolution(
    graph: &Graph,
    reference_spec: &ProcessSpec,
    candidate_spec: &ProcessSpec,
    seed: u64,
    rounds: usize,
) {
    let mut reference = reference_spec.build(graph).expect("reference process builds");
    let mut candidate = candidate_spec.build(graph).expect("candidate process builds");
    let mut reference_rng = ChaCha12Rng::seed_from_u64(seed);
    let mut candidate_rng = ChaCha12Rng::seed_from_u64(seed);

    assert_eq!(candidate.num_active(), reference.num_active(), "{candidate_spec}: initial count");
    for round in 1..=rounds {
        reference.step(&mut reference_rng);
        candidate.step(&mut candidate_rng);
        assert_eq!(
            candidate.num_active(),
            reference.num_active(),
            "{candidate_spec} seed {seed}: num_active diverged at round {round}"
        );
        assert_eq!(
            candidate.active().to_indicator(),
            reference.active().to_indicator(),
            "{candidate_spec} seed {seed}: active set diverged at round {round}"
        );
        let mut reference_delta = reference.newly_activated().to_vec();
        let mut candidate_delta = candidate.newly_activated().to_vec();
        reference_delta.sort_unstable();
        candidate_delta.sort_unstable();
        assert_eq!(
            candidate_delta, reference_delta,
            "{candidate_spec} seed {seed}: delta diverged at round {round}"
        );
        assert_eq!(
            candidate.coverage().map(|set| set.count()),
            reference.coverage().map(|set| set.count()),
            "{candidate_spec} seed {seed}: coverage diverged at round {round}"
        );
        assert_eq!(
            candidate.is_complete(),
            reference.is_complete(),
            "{candidate_spec} seed {seed}: completion diverged at round {round}"
        );
        if reference.is_complete() {
            break;
        }
    }
}

/// For every process and every oblivious clause set: the `adv=oblivious` engine path is
/// bit-identical to the plain `FaultedProcess` path.
fn assert_oblivious_engine_is_identity(graph: &Graph, seed: u64, rounds: usize) {
    for spec in all_specs() {
        if spec.start() >= graph.num_vertices() {
            continue;
        }
        for clauses in oblivious_clause_sets() {
            let plain: ProcessSpec =
                format!("{spec}+{clauses}").parse().expect("plain fault clauses parse");
            let engine: ProcessSpec = format!("{spec}+{clauses}+adv=oblivious")
                .parse()
                .expect("engine-routed clauses parse");
            assert_same_evolution(graph, &plain, &engine, seed, rounds);
        }
    }
}

/// Zero-strength adaptive policies are invisible: no crashes at budget 0, no drops at
/// `f = 0` — and neither may consume RNG draws.
fn assert_zero_strength_policies_are_identity(graph: &Graph, seed: u64, rounds: usize) {
    for spec in all_specs() {
        if spec.start() >= graph.num_vertices() {
            continue;
        }
        for policy in ["adv=topdeg:budget=0", "adv=dropfront:f=0"] {
            let wrapped: ProcessSpec =
                format!("{spec}+{policy}").parse().expect("zero-strength policy parses");
            assert_same_evolution(graph, &spec, &wrapped, seed, rounds);
        }
    }
}

/// Defense clauses that must be inert for `spec`: `passive` always is; `boostk` with a
/// stall window beyond the test horizon never fires; `reseed` fires only on frontier
/// death, which never happens to the bare processes here — except the contact process,
/// whose infection can die out and *should* then be revived, so it is excluded.
fn inert_defense_clauses(spec: &ProcessSpec) -> Vec<&'static str> {
    let mut clauses = vec!["def=passive", "def=boostk:trigger=stall,w=100,cap=4"];
    if spec.name() != "contact" {
        clauses.push("def=reseed:m=1%,cooldown=16");
    }
    clauses
}

/// Inert defense policies are invisible: the defended build reproduces the bare process
/// exactly.
fn assert_inert_defenses_are_identity(graph: &Graph, seed: u64, rounds: usize) {
    for spec in all_specs() {
        if spec.start() >= graph.num_vertices() {
            continue;
        }
        for clause in inert_defense_clauses(&spec) {
            let defended: ProcessSpec =
                format!("{spec}+{clause}").parse().expect("inert defense clause parses");
            assert_same_evolution(graph, &spec, &defended, seed, rounds);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every process × every oblivious plan on connected random-regular expanders.
    #[test]
    fn oblivious_engine_is_identity_on_random_regular(
        n in 12usize..72,
        r in 3usize..6,
        seed in 0u64..10_000,
    ) {
        prop_assume!((n * r) % 2 == 0 && r < n);
        let mut gen_rng = ChaCha12Rng::seed_from_u64(seed ^ 0xAD5E);
        let graph = generators::connected_random_regular(n, r, &mut gen_rng).unwrap();
        assert_oblivious_engine_is_identity(&graph, seed, 50);
    }

    /// Every process × every oblivious plan on 2-D tori (the poor-expander contrast).
    #[test]
    fn oblivious_engine_is_identity_on_torus(side in 3usize..8, seed in 0u64..10_000) {
        let graph = generators::torus_2d(side, side).unwrap();
        assert_oblivious_engine_is_identity(&graph, seed, 40);
    }

    /// Zero-strength adaptive policies are the identity on expanders.
    #[test]
    fn zero_strength_policies_are_identity_on_random_regular(
        n in 12usize..72,
        r in 3usize..6,
        seed in 0u64..10_000,
    ) {
        prop_assume!((n * r) % 2 == 0 && r < n);
        let mut gen_rng = ChaCha12Rng::seed_from_u64(seed ^ 0x0B5E);
        let graph = generators::connected_random_regular(n, r, &mut gen_rng).unwrap();
        assert_zero_strength_policies_are_identity(&graph, seed, 50);
    }

    /// Inert defense policies are the identity on expanders.
    #[test]
    fn inert_defenses_are_identity_on_random_regular(
        n in 12usize..72,
        r in 3usize..6,
        seed in 0u64..10_000,
    ) {
        prop_assume!((n * r) % 2 == 0 && r < n);
        let mut gen_rng = ChaCha12Rng::seed_from_u64(seed ^ 0xDEF5);
        let graph = generators::connected_random_regular(n, r, &mut gen_rng).unwrap();
        assert_inert_defenses_are_identity(&graph, seed, 50);
    }

    /// Inert defense policies are the identity on 2-D tori.
    #[test]
    fn inert_defenses_are_identity_on_torus(side in 3usize..8, seed in 0u64..10_000) {
        let graph = generators::torus_2d(side, side).unwrap();
        assert_inert_defenses_are_identity(&graph, seed, 40);
    }
}

/// Fixed, deterministic smoke on the acceptance instance family (random-8-regular).
#[test]
fn oblivious_engine_is_identity_on_a_fixed_expander() {
    let mut gen_rng = ChaCha12Rng::seed_from_u64(2016);
    let graph = generators::connected_random_regular(128, 8, &mut gen_rng).unwrap();
    for seed in 0..4u64 {
        assert_oblivious_engine_is_identity(&graph, seed, 120);
    }
}

/// The adaptive policies produce *different* trajectories than their matched oblivious
/// counterparts — the engine is not a no-op when the policy actually targets state.
#[test]
fn targeted_policies_actually_diverge_from_oblivious_baselines() {
    let mut gen_rng = ChaCha12Rng::seed_from_u64(2016);
    let graph = generators::connected_random_regular(96, 8, &mut gen_rng).unwrap();
    let adaptive: ProcessSpec = "cobra:k=2+adv=topdeg:budget=10%".parse().unwrap();
    let oblivious: ProcessSpec = "cobra:k=2+crash=10%".parse().unwrap();
    let mut diverged = false;
    for seed in 0..4u64 {
        let mut a = adaptive.build(&graph).unwrap();
        let mut b = oblivious.build(&graph).unwrap();
        let mut rng_a = ChaCha12Rng::seed_from_u64(seed);
        let mut rng_b = ChaCha12Rng::seed_from_u64(seed);
        for _ in 0..40 {
            a.step(&mut rng_a);
            b.step(&mut rng_b);
            if a.active().to_indicator() != b.active().to_indicator() {
                diverged = true;
                break;
            }
        }
    }
    assert!(diverged, "crash-top-degree must not coincide with sampled crashes");
}

// ---------------------------------------------------------------------------
// Draw-count sanitizer: the adversary engine's RNG arithmetic, asserted on the
// counts themselves.
// ---------------------------------------------------------------------------

use cobra::core::CountingRng;

/// Routing a plan through `adv=oblivious` consumes **exactly** the same number of RNG
/// words per round as the plain `FaultedProcess` path — including non-benign plans, where
/// both sides draw (the same, nonzero) per-round amounts from shared `PlanDynamics`.
#[test]
fn oblivious_engine_draw_counts_match_the_plain_fault_path() {
    let mut gen_rng = ChaCha12Rng::seed_from_u64(2016);
    let graph = generators::connected_random_regular(64, 4, &mut gen_rng).unwrap();
    for spec in all_specs() {
        for clauses in oblivious_clause_sets() {
            let plain: ProcessSpec =
                format!("{spec}+{clauses}").parse().expect("plain fault clauses parse");
            let engine: ProcessSpec = format!("{spec}+{clauses}+adv=oblivious")
                .parse()
                .expect("engine-routed clauses parse");
            for seed in 0..2u64 {
                let mut reference = plain.build(&graph).expect("plain path builds");
                let mut candidate = engine.build(&graph).expect("engine path builds");
                let mut reference_rng = CountingRng::new(ChaCha12Rng::seed_from_u64(seed));
                let mut candidate_rng = CountingRng::new(ChaCha12Rng::seed_from_u64(seed));
                for round in 1..=50 {
                    reference.step(&mut reference_rng);
                    candidate.step(&mut candidate_rng);
                    let expected = reference_rng.take_count();
                    assert_eq!(
                        candidate_rng.take_count(),
                        expected,
                        "{engine} seed {seed}: draw count diverged at round {round} \
                         (plain path drew {expected})"
                    );
                    if reference.is_complete() {
                        break;
                    }
                }
            }
        }
    }
}

/// Zero-strength adaptive policies never touch the RNG: per round, the wrapped process
/// draws exactly as many words as the bare one.
#[test]
fn zero_strength_policies_draw_exactly_zero_extra_words_per_round() {
    let mut gen_rng = ChaCha12Rng::seed_from_u64(2016);
    let graph = generators::connected_random_regular(64, 4, &mut gen_rng).unwrap();
    for spec in all_specs() {
        for policy in ["adv=topdeg:budget=0", "adv=dropfront:f=0"] {
            let wrapped: ProcessSpec =
                format!("{spec}+{policy}").parse().expect("zero-strength policy parses");
            for seed in 0..3u64 {
                let mut bare = spec.build(&graph).expect("bare process builds");
                let mut candidate = wrapped.build(&graph).expect("wrapped process builds");
                let mut bare_rng = CountingRng::new(ChaCha12Rng::seed_from_u64(seed));
                let mut candidate_rng = CountingRng::new(ChaCha12Rng::seed_from_u64(seed));
                for round in 1..=50 {
                    bare.step(&mut bare_rng);
                    candidate.step(&mut candidate_rng);
                    let expected = bare_rng.take_count();
                    assert_eq!(
                        candidate_rng.take_count(),
                        expected,
                        "{wrapped} seed {seed}: draw count diverged at round {round} \
                         (bare drew {expected})"
                    );
                    if bare.is_complete() {
                        break;
                    }
                }
            }
        }
    }
}

/// Inert defense policies never touch the RNG either: per round, the defended process
/// draws exactly as many words as the bare one — `DefensePolicy::observe` is draw-free
/// for the shipped policies and the inert `DefendedProcess` path makes no hook calls.
#[test]
fn inert_defenses_draw_exactly_zero_extra_words_per_round() {
    let mut gen_rng = ChaCha12Rng::seed_from_u64(2016);
    let graph = generators::connected_random_regular(64, 4, &mut gen_rng).unwrap();
    for spec in all_specs() {
        for clause in inert_defense_clauses(&spec) {
            let defended: ProcessSpec =
                format!("{spec}+{clause}").parse().expect("inert defense clause parses");
            for seed in 0..3u64 {
                let mut bare = spec.build(&graph).expect("bare process builds");
                let mut candidate = defended.build(&graph).expect("defended process builds");
                let mut bare_rng = CountingRng::new(ChaCha12Rng::seed_from_u64(seed));
                let mut candidate_rng = CountingRng::new(ChaCha12Rng::seed_from_u64(seed));
                for round in 1..=50 {
                    bare.step(&mut bare_rng);
                    candidate.step(&mut candidate_rng);
                    let expected = bare_rng.take_count();
                    assert_eq!(
                        candidate_rng.take_count(),
                        expected,
                        "{defended} seed {seed}: draw count diverged at round {round} \
                         (bare drew {expected})"
                    );
                    if bare.is_complete() {
                        break;
                    }
                }
            }
        }
    }
}
