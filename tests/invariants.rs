//! Cross-crate property-based tests: invariants that must hold for random graphs, random
//! process parameters and random seeds.

use cobra::core::bips::BipsProcess;
use cobra::core::cobra::{Branching, CobraProcess};
use cobra::core::growth;
use cobra::core::process::SpreadingProcess;
use cobra::graph::{generators, ops};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// COBRA invariants on random regular graphs: the active set never dies, never exceeds the
    /// branching bound, and the visited set is monotone.
    #[test]
    fn cobra_invariants(n in 8usize..64, seed in 0u64..500, k in 1u32..4) {
        prop_assume!((n * 3) % 2 == 0);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let graph = generators::connected_random_regular(n, 3, &mut rng).unwrap();
        let mut process =
            CobraProcess::new(&graph, 0, Branching::fixed(k).unwrap()).unwrap();
        let mut previous_active = process.num_active();
        let mut previous_visited = process.num_visited();
        for _ in 0..40 {
            process.step(&mut rng);
            let active = process.num_active();
            prop_assert!(active >= 1);
            prop_assert!(active <= k as usize * previous_active);
            prop_assert!(process.num_visited() >= previous_visited);
            prop_assert!(process.num_visited() >= active);
            previous_active = active;
            previous_visited = process.num_visited();
        }
    }

    /// BIPS invariants: the source stays infected, the infected count matches the indicator,
    /// and completion means every vertex is infected.
    #[test]
    fn bips_invariants(n in 8usize..64, seed in 0u64..500, source in 0usize..8) {
        prop_assume!((n * 3) % 2 == 0);
        prop_assume!(source < n);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let graph = generators::connected_random_regular(n, 3, &mut rng).unwrap();
        let mut process =
            BipsProcess::new(&graph, source, Branching::fixed(2).unwrap()).unwrap();
        for _ in 0..60 {
            process.step(&mut rng);
            prop_assert!(process.is_infected(source));
            let recount = process.active().count();
            prop_assert_eq!(recount, process.num_infected());
            if process.is_complete() {
                prop_assert_eq!(process.num_infected(), n);
                break;
            }
        }
    }

    /// Lemma 1: the exact one-step growth expectation dominates the spectral lower bound on
    /// arbitrary infected sets of random regular graphs.
    #[test]
    fn growth_bound_holds_on_random_sets(n in 10usize..40, seed in 0u64..200, size in 1usize..20) {
        prop_assume!((n * 4) % 2 == 0);
        prop_assume!(size <= n);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let graph = generators::connected_random_regular(n, 4, &mut rng).unwrap();
        let lambda = cobra::spectral::analyze(&graph).unwrap().lambda_abs;
        let observations = growth::audit_growth_random_sets(
            &graph,
            0,
            Branching::fixed(2).unwrap(),
            lambda,
            size,
            3,
            &mut rng,
        )
        .unwrap();
        for obs in observations {
            prop_assert!(
                obs.bound_holds(),
                "size {}: E = {} < bound = {}", obs.set_size, obs.expected_next, obs.lower_bound
            );
        }
    }

    /// Spectral sanity on arbitrary connected regular-ish graphs: |lambda| <= 1 and the
    /// Theorem 1 budget is finite exactly when the graph is non-bipartite and connected.
    #[test]
    fn spectral_profile_invariants(n in 6usize..40, seed in 0u64..200) {
        prop_assume!((n * 3) % 2 == 0);
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let graph = generators::connected_random_regular(n, 3, &mut rng).unwrap();
        let profile = cobra::spectral::analyze(&graph).unwrap();
        prop_assert!(profile.lambda_abs <= 1.0 + 1e-9);
        prop_assert!(profile.lambda_2 >= profile.lambda_min - 1e-12);
        prop_assert!(profile.connected);
        let finite_budget = profile.cover_time_bound().is_finite();
        prop_assert_eq!(finite_budget, !profile.bipartite);
        prop_assert_eq!(ops::is_bipartite(&graph), profile.bipartite);
    }
}
