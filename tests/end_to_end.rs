//! End-to-end integration tests exercising the public API across every crate:
//! generate → analyse → simulate → compare against the paper's budgets.

use cobra::core::cobra::{Branching, CobraProcess};
use cobra::core::process::{trace_active_counts, SpreadingProcess};
use cobra::core::theory::TheoryBounds;
use cobra::core::{cover, infection};
use cobra::graph::generators;
use cobra::stats::ci::mean_confidence_interval;
use cobra::stats::summary::Summary;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn rng(seed: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(seed)
}

#[test]
fn expander_pipeline_respects_theorem_1_budget() {
    let mut r = rng(1);
    let graph = generators::connected_random_regular(512, 4, &mut r).unwrap();
    let profile = cobra::spectral::analyze(&graph).unwrap();
    assert!(profile.connected);
    assert!(!profile.bipartite);
    assert!(profile.satisfies_gap_hypothesis(1.0), "random 4-regular graphs are expanders");

    let bounds = TheoryBounds::from_profile(&profile);
    let mut summary = Summary::new();
    for _ in 0..20 {
        let outcome =
            cover::cover_time(&graph, 0, Branching::fixed(2).unwrap(), 100_000, &mut r).unwrap();
        summary.record(outcome.rounds as f64);
    }
    // The measured cover time must sit below the Theorem 1 budget and be a small multiple of
    // ln n (the instance has a constant spectral gap).
    let ci = mean_confidence_interval(&summary, 0.99);
    assert!(
        ci.upper < bounds.cobra_cover,
        "measured {} vs budget {}",
        ci.upper,
        bounds.cobra_cover
    );
    assert!(summary.mean() < 12.0 * (512f64).ln(), "mean {} not O(log n)-like", summary.mean());
    assert!(summary.mean() >= (512f64).log2(), "cannot beat the doubling lower bound");
}

#[test]
fn cover_and_infection_times_are_comparable_across_graph_families() {
    let mut r = rng(2);
    let graphs = vec![
        generators::complete(128).unwrap(),
        generators::connected_random_regular(128, 3, &mut r).unwrap(),
        generators::cycle_power(128, 8).unwrap(),
    ];
    for graph in graphs {
        let mut cover_sum = Summary::new();
        let mut infection_sum = Summary::new();
        for _ in 0..10 {
            cover_sum.record(
                cover::cover_time(&graph, 0, Branching::fixed(2).unwrap(), 1_000_000, &mut r)
                    .unwrap()
                    .rounds as f64,
            );
            infection_sum.record(
                infection::infection_time(
                    &graph,
                    0,
                    Branching::fixed(2).unwrap(),
                    1_000_000,
                    &mut r,
                )
                .unwrap()
                .rounds as f64,
            );
        }
        let ratio = infection_sum.mean() / cover_sum.mean();
        assert!(
            (0.2..=5.0).contains(&ratio),
            "duality predicts comparable times, got ratio {ratio} on {graph:?}"
        );
    }
}

#[test]
fn grid_is_polynomially_slower_than_expander_of_equal_size() {
    // 32x32 rather than 24x24: the sqrt(n)-vs-log(n) separation needs a little room before
    // the factor-2 assertion below is robust to seed luck over only 8 trials.
    let mut r = rng(3);
    let n = 32 * 32;
    let torus = generators::torus_2d(32, 32).unwrap();
    let expander = generators::connected_random_regular(n, 4, &mut r).unwrap();
    let mut torus_sum = Summary::new();
    let mut expander_sum = Summary::new();
    for _ in 0..8 {
        torus_sum.record(
            cover::cover_time(&torus, 0, Branching::fixed(2).unwrap(), 10_000_000, &mut r)
                .unwrap()
                .rounds as f64,
        );
        expander_sum.record(
            cover::cover_time(&expander, 0, Branching::fixed(2).unwrap(), 10_000_000, &mut r)
                .unwrap()
                .rounds as f64,
        );
    }
    assert!(
        torus_sum.mean() > 2.0 * expander_sum.mean(),
        "torus ({}) should be much slower than the expander ({})",
        torus_sum.mean(),
        expander_sum.mean()
    );
}

#[test]
fn cobra_active_set_growth_is_bounded_by_branching() {
    let mut r = rng(4);
    let graph = generators::hypercube(9).unwrap();
    let mut process = CobraProcess::new(&graph, 0, Branching::fixed(2).unwrap()).unwrap();
    let trace = trace_active_counts(&mut process, &mut r, 500);
    for w in trace.windows(2) {
        assert!(w[1] <= 2 * w[0], "the active set can at most double per round with k = 2");
    }
    assert!(process.is_complete(), "the hypercube should be covered within the budget");
}

#[test]
fn degenerate_instances_are_rejected_uniformly() {
    let empty = cobra::graph::Graph::default();
    assert!(cobra::spectral::analyze(&empty).is_err());
    assert!(CobraProcess::new(&empty, 0, Branching::fixed(2).unwrap()).is_err());
    assert!(cobra::core::bips::BipsProcess::new(&empty, 0, Branching::fixed(2).unwrap()).is_err());

    let disconnected = cobra::graph::Graph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]).unwrap();
    let mut r = rng(5);
    // A disconnected graph can never be covered: the budget is exhausted instead of looping
    // forever.
    let result = cover::cover_time(&disconnected, 0, Branching::fixed(2).unwrap(), 50, &mut r);
    assert!(matches!(result, Err(cobra::core::CoreError::RoundBudgetExceeded { .. })));
}

#[test]
fn experiment_registry_smoke_run_is_deterministic() {
    use cobra::experiments::registry::{run_experiment, ExperimentId, Preset};
    let a = run_experiment(ExperimentId::E6, Preset::Quick, 99);
    let b = run_experiment(ExperimentId::E6, Preset::Quick, 99);
    assert_eq!(a.tables[0].render(), b.tables[0].render());
    assert_eq!(a.findings.len(), b.findings.len());
    for (fa, fb) in a.findings.iter().zip(b.findings.iter()) {
        assert_eq!(fa.name, fb.name);
        assert!((fa.value - fb.value).abs() < 1e-12);
    }
}
