//! Seeded-RNG equivalence of the sparse-frontier engine and the retained dense reference
//! engine, for all seven spreading processes.
//!
//! The frontier engines promise to be a pure performance refactor: driven by the same seeded
//! RNG they must reproduce the dense engines' per-round `num_active`, full active set and
//! visited-count evolution **exactly** (the frontier preserves the dense vertex visit order,
//! and `cobra_graph::sample` performs the same widening-multiply reduction as `gen_range`).
//! These property tests pin that contract on random-regular and torus instances across many
//! seeds; any divergence in RNG consumption or set bookkeeping fails within a few rounds.

use cobra::core::process::SpreadingProcess;
use cobra::core::reference;
use cobra::core::spec::ProcessSpec;
use cobra::graph::{generators, Graph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// One spec per process implementation (both COBRA branching modes, transient and
/// persistent contact), with starts spread over the vertex range.
fn all_specs() -> Vec<ProcessSpec> {
    vec![
        ProcessSpec::cobra(2).unwrap(),
        ProcessSpec::cobra_fractional(0.4).unwrap().with_start(3),
        ProcessSpec::bips(2).unwrap().with_start(1),
        ProcessSpec::random_walk(),
        ProcessSpec::multiple_walks(5).with_start(2),
        ProcessSpec::push(),
        ProcessSpec::push_pull().with_start(4),
        ProcessSpec::contact(0.6, 0.3).unwrap(),
        "contact:p=0.2,q=0.7,transient".parse().unwrap(),
    ]
}

/// Steps both engines with identically seeded RNGs and asserts byte-identical evolution.
fn assert_equivalent(graph: &Graph, spec: &ProcessSpec, seed: u64, rounds: usize) {
    let mut frontier = spec.build(graph).expect("frontier engine builds");
    let mut dense = reference::build_dense(spec, graph).expect("dense engine builds");
    let mut frontier_rng = ChaCha12Rng::seed_from_u64(seed);
    let mut dense_rng = ChaCha12Rng::seed_from_u64(seed);

    assert_eq!(frontier.num_active(), dense.num_active(), "{spec}: initial count");
    for round in 1..=rounds {
        frontier.step(&mut frontier_rng);
        dense.step(&mut dense_rng);
        assert_eq!(
            frontier.num_active(),
            dense.num_active(),
            "{spec} seed {seed}: num_active diverged at round {round}"
        );
        assert_eq!(
            frontier.active().to_indicator(),
            dense.active_indicator(),
            "{spec} seed {seed}: active set diverged at round {round}"
        );
        assert_eq!(
            frontier.is_complete(),
            dense.is_complete(),
            "{spec} seed {seed}: completion diverged at round {round}"
        );
        if frontier.is_complete() {
            break;
        }
    }
}

/// The visited/ever-infected counters are process-specific API, so they are compared through
/// the concrete types for the process families that track them.
fn typed_visited_matches(graph: &Graph, seed: u64, rounds: usize) {
    use cobra::core::cobra::{Branching, CobraProcess};
    let mut frontier = CobraProcess::new(graph, 0, Branching::fixed(2).unwrap()).unwrap();
    let mut dense = reference::DenseCobra::new(graph, 0, Branching::fixed(2).unwrap());
    let mut frontier_rng = ChaCha12Rng::seed_from_u64(seed);
    let mut dense_rng = ChaCha12Rng::seed_from_u64(seed);
    for round in 1..=rounds {
        frontier.step(&mut frontier_rng);
        reference::DenseProcess::step(&mut dense, &mut dense_rng);
        assert_eq!(
            Some(frontier.num_visited()),
            reference::DenseProcess::num_visited(&dense),
            "cobra seed {seed}: num_visited diverged at round {round}"
        );
        if frontier.is_complete() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every process on connected random-regular expanders: identical evolution.
    #[test]
    fn frontier_matches_dense_on_random_regular(n in 12usize..96, r in 3usize..6, seed in 0u64..10_000) {
        prop_assume!((n * r) % 2 == 0 && r < n);
        let mut gen_rng = ChaCha12Rng::seed_from_u64(seed ^ 0xD1CE);
        let graph = generators::connected_random_regular(n, r, &mut gen_rng).unwrap();
        for spec in all_specs() {
            prop_assume!(spec.start() < n);
            assert_equivalent(&graph, &spec, seed, 80);
        }
        typed_visited_matches(&graph, seed, 80);
    }

    /// Every process on 2-D tori (the paper's poor-expander contrast family).
    #[test]
    fn frontier_matches_dense_on_torus(side in 3usize..10, seed in 0u64..10_000) {
        let graph = generators::torus_2d(side, side).unwrap();
        for spec in all_specs() {
            prop_assume!(spec.start() < graph.num_vertices());
            assert_equivalent(&graph, &spec, seed, 60);
        }
        typed_visited_matches(&graph, seed, 60);
    }
}

/// A fixed, deterministic smoke version of the property (fast to run in isolation, and a
/// pinned witness on the acceptance instance family).
#[test]
fn frontier_matches_dense_on_a_fixed_expander() {
    let mut gen_rng = ChaCha12Rng::seed_from_u64(2016);
    let graph = generators::connected_random_regular(256, 8, &mut gen_rng).unwrap();
    for spec in all_specs() {
        for seed in 0..5u64 {
            assert_equivalent(&graph, &spec, seed, 200);
        }
    }
    typed_visited_matches(&graph, 7, 200);
}
