//! Observers threaded across churn epochs keep their fixed-graph contracts:
//! `fault::run_churned_observed` starts each observer exactly once and presents a single
//! continuous, monotone round index over all re-instantiated graphs, so
//!
//! * `FirstVisitTimes` entries are **set once** and carry nondecreasing round indices
//!   (a vertex first visited in epoch 3 records a larger round than one visited in
//!   epoch 1 — epochs never reset the clock),
//! * `CoverageTrace` is monotone nondecreasing,
//! * `ActiveCountTrace` holds the initial state plus exactly one entry per executed round,
//! * observers never perturb the run (the observed outcome equals the unobserved one), and
//! * multiple-random-walks migration conserves the walker count through every epoch
//!   boundary (`for_each_token` emits one entry per walker, `adopt_state` restores exact
//!   per-vertex multiplicities).
//!
//! Checked on at least two graph families (random-regular expanders and 2-D tori).

use cobra::core::fault::{run_churned, run_churned_observed, FaultPlan};
use cobra::core::process::SpreadingProcess;
use cobra::core::sim::{
    ActiveCountTrace, CoverageTrace, FirstVisitTimes, GrowthRatios, Observer, Runner, StopReason,
};
use cobra::core::spec::ProcessSpec;
use cobra::graph::generators::GraphFamily;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn rng(seed: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(seed)
}

fn families() -> Vec<GraphFamily> {
    vec![GraphFamily::RandomRegular { n: 64, r: 4 }, GraphFamily::Torus { sides: vec![8, 8] }]
}

/// Asserts the continuous-round-index contract: `on_start` sees round 0 and every
/// `on_round` advances the presented round by exactly 1 — across epoch boundaries too.
#[derive(Default)]
struct RoundContinuity {
    started: usize,
    last: usize,
    rounds_seen: usize,
}

impl Observer for RoundContinuity {
    fn on_start(&mut self, process: &dyn SpreadingProcess) {
        self.started += 1;
        assert_eq!(process.round(), 0, "the continuous index starts at round 0");
        self.last = 0;
    }

    fn on_round(&mut self, process: &dyn SpreadingProcess) {
        let round = process.round();
        assert_eq!(
            round,
            self.last + 1,
            "the round index must advance by exactly 1 per observed round, including \
             across churn epochs"
        );
        self.last = round;
        self.rounds_seen += 1;
    }
}

/// Forwards to an inner `FirstVisitTimes` and asserts after every round that previously
/// set entries never change (set-once) and that fresh entries carry the current round.
#[derive(Default)]
struct SetOnceVisits {
    inner: FirstVisitTimes,
    snapshot: Vec<Option<usize>>,
}

impl SetOnceVisits {
    fn check_against_snapshot(&mut self, round: usize) {
        let current = self.inner.first_visit();
        for (v, (&before, &now)) in self.snapshot.iter().zip(current).enumerate() {
            match (before, now) {
                (Some(earlier), later) => assert_eq!(
                    Some(earlier),
                    later,
                    "vertex {v}: first-visit time was overwritten at round {round}"
                ),
                (None, Some(fresh)) => assert_eq!(
                    fresh, round,
                    "vertex {v}: a fresh first-visit time must equal the current round"
                ),
                (None, None) => {}
            }
        }
        self.snapshot = current.to_vec();
    }
}

impl Observer for SetOnceVisits {
    fn on_start(&mut self, process: &dyn SpreadingProcess) {
        self.inner.on_start(process);
        self.snapshot = self.inner.first_visit().to_vec();
    }

    fn on_round(&mut self, process: &dyn SpreadingProcess) {
        self.inner.on_round(process);
        self.check_against_snapshot(process.round());
    }
}

/// Counts the tokens `for_each_token` emits every round and asserts the count never
/// changes — the walker-conservation invariant across arbitrary epoch boundaries.
#[derive(Default)]
struct TokenConservation {
    expected: Option<usize>,
}

impl TokenConservation {
    fn count(process: &dyn SpreadingProcess) -> usize {
        let mut count = 0;
        process.for_each_token(&mut |_| count += 1);
        count
    }
}

impl Observer for TokenConservation {
    fn on_start(&mut self, process: &dyn SpreadingProcess) {
        self.expected = Some(Self::count(process));
    }

    fn on_round(&mut self, process: &dyn SpreadingProcess) {
        assert_eq!(
            Some(Self::count(process)),
            self.expected,
            "the token count must be conserved through every round and epoch boundary"
        );
    }
}

/// Runs `spec` churned over `family` with the full observer set and checks every
/// cross-epoch contract.
fn assert_churned_observer_contracts(spec: &ProcessSpec, family: &GraphFamily, seed: u64) {
    let runner = Runner::new(100_000);
    let mut counts = ActiveCountTrace::new();
    let mut visits = SetOnceVisits::default();
    let mut coverage = CoverageTrace::new();
    let mut growth = GrowthRatios::new();
    let mut continuity = RoundContinuity::default();
    let outcome = run_churned_observed(
        spec,
        family,
        &runner,
        &mut rng(seed),
        &mut [&mut counts, &mut visits, &mut coverage, &mut growth, &mut continuity],
    )
    .expect("churned observed run succeeds");
    assert_eq!(outcome.reason, StopReason::Completed, "{spec} on {family} seed {seed}");

    // Observers were started exactly once and saw every executed round.
    assert_eq!(continuity.started, 1, "{spec}: observers must be started exactly once");
    assert_eq!(continuity.rounds_seen, outcome.rounds, "{spec}: one on_round per round");

    // ActiveCountTrace: the initial state plus one entry per executed round.
    assert_eq!(counts.trace().len(), outcome.rounds + 1, "{spec} on {family} seed {seed}");
    assert!(counts.trace().iter().all(|&a| a >= 1), "{spec}: the active set never empties");

    // CoverageTrace: same length, monotone, ending at full coverage.
    assert_eq!(coverage.trace().len(), outcome.rounds + 1);
    assert!(
        coverage.trace().windows(2).all(|w| w[1] >= w[0]),
        "{spec} on {family} seed {seed}: the coverage curve must be monotone across epochs"
    );
    assert_eq!(*coverage.trace().last().unwrap(), outcome.num_vertices);

    // FirstVisitTimes (set-once asserted per round inside the observer): on completion
    // every vertex is covered and the maximum first-visit round is the cover time.
    assert!(visits.inner.covered(), "{spec} on {family} seed {seed}: completed => covered");
    let cover = visits.inner.cover_time().expect("covered");
    assert!(
        cover <= outcome.rounds,
        "{spec}: cover time {cover} cannot exceed the {} executed rounds",
        outcome.rounds
    );

    // Growth ratios accumulate over all epochs (one per round with a live predecessor).
    assert_eq!(growth.ratios().len(), outcome.rounds);
    assert!(growth.ratios().iter().all(|&r| r > 0.0));
}

#[test]
fn churned_observers_keep_their_contracts_on_two_families() {
    // COBRA (coverage-tracking frontier) and PUSH (monotone active set) exercise the two
    // observer code paths; churn periods straddle short and long epochs.
    let specs: Vec<ProcessSpec> = vec![
        "cobra:k=2+churn=8".parse().unwrap(),
        "cobra:k=2+churn=3".parse().unwrap(),
        "push+churn=16".parse().unwrap(),
    ];
    for family in families() {
        for spec in &specs {
            for seed in 0..3 {
                assert_churned_observer_contracts(spec, &family, seed);
            }
        }
    }
}

#[test]
fn observers_do_not_perturb_the_churned_run() {
    let family = GraphFamily::RandomRegular { n: 64, r: 4 };
    let spec: ProcessSpec = "cobra:k=2+drop=0.1+churn=8".parse().unwrap();
    let runner = Runner::new(100_000);
    for seed in 0..4 {
        let plain = run_churned(&spec, &family, &runner, &mut rng(seed)).unwrap();
        let mut counts = ActiveCountTrace::new();
        let mut visits = FirstVisitTimes::new();
        let observed = run_churned_observed(
            &spec,
            &family,
            &runner,
            &mut rng(seed),
            &mut [&mut counts, &mut visits],
        )
        .unwrap();
        assert_eq!(plain, observed, "seed {seed}: observers must not affect the trajectory");
    }
}

#[test]
fn budget_exhaustion_truncates_traces_exactly() {
    // A single walker cannot cover a 64-vertex expander in 5 rounds: the run exhausts its
    // budget mid-epoch and the traces hold exactly initial + 5 entries.
    let family = GraphFamily::RandomRegular { n: 64, r: 4 };
    let spec: ProcessSpec = "walk+churn=2".parse().unwrap();
    let runner = Runner::new(5);
    let mut counts = ActiveCountTrace::new();
    let mut continuity = RoundContinuity::default();
    let outcome = run_churned_observed(
        &spec,
        &family,
        &runner,
        &mut rng(9),
        &mut [&mut counts, &mut continuity],
    )
    .unwrap();
    assert_eq!(outcome.reason, StopReason::BudgetExhausted);
    assert_eq!(outcome.rounds, 5);
    assert_eq!(counts.trace().len(), 6);
    assert_eq!(continuity.rounds_seen, 5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Walker conservation: however the churn period, walker count and seed fall, the
    /// multiple-random-walks process carries exactly its initial number of walkers through
    /// every epoch boundary (`for_each_token` + `adopt_state` preserve multiplicity).
    #[test]
    fn multiwalk_conserves_walkers_across_arbitrary_epoch_boundaries(
        walkers in 1usize..9,
        period in 1usize..14,
        family_index in 0usize..2,
        seed in 0u64..10_000,
    ) {
        let family = families().swap_remove(family_index);
        let spec = ProcessSpec::multiple_walks(walkers)
            .faulted(FaultPlan { churn: Some(period), ..FaultPlan::default() });
        // Cap the budget: several epochs' worth of rounds, but no need to run to cover.
        let runner = Runner::new(8 * period + 20);
        let mut conservation = TokenConservation::default();
        let mut continuity = RoundContinuity::default();
        let outcome = run_churned_observed(
            &spec,
            &family,
            &runner,
            &mut rng(seed),
            &mut [&mut conservation, &mut continuity],
        )
        .unwrap();
        prop_assert_eq!(conservation.expected, Some(walkers));
        prop_assert!(outcome.rounds > 0, "a walk on 64 vertices never completes at round 0");
    }
}
