//! Zero-fault wrappers are a no-op: a `FaultedProcess` with `drop=0`, no crashes and no
//! churn must reproduce the bare process **bit for bit** under the same seeded RNG — the
//! fault hooks inside every `step_faulted` implementation may not touch the RNG or the
//! bookkeeping when the fault view is benign. This extends the engine-equivalence
//! discipline of `tests/frontier_equivalence.rs` to the fault layer, for all seven
//! processes.
//!
//! The Gilbert–Elliott channel is held to the same standard at its degenerate corners:
//! a *lossless* channel (`fb = fg = 0`) is bit-identical to the bare process regardless of
//! its transition probabilities, and the *burst-length-1* channel (`pb = pg = 1` with equal
//! state losses) is bit-identical to i.i.d. `drop=f` — the channel alternates
//! deterministically without consuming randomness, so both wrappers present the same
//! per-round drop probability to the same RNG stream.

use cobra::core::spec::ProcessSpec;
use cobra::graph::{generators, Graph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// One spec per process implementation (matching `frontier_equivalence::all_specs`).
fn all_specs() -> Vec<ProcessSpec> {
    vec![
        ProcessSpec::cobra(2).unwrap(),
        ProcessSpec::cobra_fractional(0.4).unwrap().with_start(3),
        ProcessSpec::bips(2).unwrap().with_start(1),
        ProcessSpec::random_walk(),
        ProcessSpec::multiple_walks(5).with_start(2),
        ProcessSpec::push(),
        ProcessSpec::push_pull().with_start(4),
        ProcessSpec::contact(0.6, 0.3).unwrap(),
        "contact:p=0.2,q=0.7,transient".parse().unwrap(),
    ]
}

/// The zero-fault plans under test: plain zero drop, zero drop plus an empty sampled
/// crash set, and a lossless Gilbert–Elliott channel (none may consume RNG).
fn zero_fault_wrappings(spec: &ProcessSpec) -> Vec<ProcessSpec> {
    vec![
        format!("{spec}+drop=0").parse().expect("zero drop clause parses"),
        format!("{spec}+drop=0+crash=0").parse().expect("zero crash clause parses"),
        format!("{spec}+gedrop=0.3,0.7,0").parse().expect("lossless channel clause parses"),
    ]
}

/// Steps two builds of the same underlying process — `spec` as the reference,
/// `wrapped_spec` as the candidate — with identically seeded RNGs and asserts
/// byte-identical evolution of the active set, delta and coverage.
fn assert_same_evolution(
    graph: &Graph,
    spec: &ProcessSpec,
    wrapped_spec: &ProcessSpec,
    seed: u64,
    rounds: usize,
) {
    let mut bare = spec.build(graph).expect("reference process builds");
    let mut wrapped = wrapped_spec.build(graph).expect("candidate process builds");
    let mut bare_rng = ChaCha12Rng::seed_from_u64(seed);
    let mut wrapped_rng = ChaCha12Rng::seed_from_u64(seed);

    assert_eq!(wrapped.num_active(), bare.num_active(), "{wrapped_spec}: initial count");
    for round in 1..=rounds {
        bare.step(&mut bare_rng);
        wrapped.step(&mut wrapped_rng);
        assert_eq!(
            wrapped.num_active(),
            bare.num_active(),
            "{wrapped_spec} seed {seed}: num_active diverged at round {round}"
        );
        assert_eq!(
            wrapped.active().to_indicator(),
            bare.active().to_indicator(),
            "{wrapped_spec} seed {seed}: active set diverged at round {round}"
        );
        let mut bare_delta = bare.newly_activated().to_vec();
        let mut wrapped_delta = wrapped.newly_activated().to_vec();
        bare_delta.sort_unstable();
        wrapped_delta.sort_unstable();
        assert_eq!(
            wrapped_delta, bare_delta,
            "{wrapped_spec} seed {seed}: delta diverged at round {round}"
        );
        // The visited/coverage evolution (COBRA and the walks track it; the wrapper must
        // forward it untouched).
        assert_eq!(
            wrapped.coverage().map(|set| set.count()),
            bare.coverage().map(|set| set.count()),
            "{wrapped_spec} seed {seed}: num_visited diverged at round {round}"
        );
        assert_eq!(
            wrapped.is_complete(),
            bare.is_complete(),
            "{wrapped_spec} seed {seed}: completion diverged at round {round}"
        );
        if bare.is_complete() {
            break;
        }
    }
}

fn assert_all_processes_no_op(graph: &Graph, seed: u64, rounds: usize) {
    for spec in all_specs() {
        if spec.start() >= graph.num_vertices() {
            continue;
        }
        for wrapped_spec in zero_fault_wrappings(&spec) {
            assert_same_evolution(graph, &spec, &wrapped_spec, seed, rounds);
        }
    }
}

/// The burst-length-1 pairing: `drop=f` as the reference, the degenerate alternating
/// channel `gedrop=1,1,f,f` as the candidate. `f64`'s `Display` is the shortest
/// round-tripping form, so the clause parses back to exactly `f`.
fn assert_all_processes_burst_one_degenerate(graph: &Graph, f: f64, seed: u64, rounds: usize) {
    for spec in all_specs() {
        if spec.start() >= graph.num_vertices() {
            continue;
        }
        let iid: ProcessSpec = format!("{spec}+drop={f}").parse().expect("iid drop clause parses");
        let degenerate: ProcessSpec =
            format!("{spec}+gedrop=1,1,{f},{f}").parse().expect("degenerate channel parses");
        assert_same_evolution(graph, &iid, &degenerate, seed, rounds);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every process on connected random-regular expanders: the zero-fault wrapper is
    /// invisible.
    #[test]
    fn zero_fault_wrapper_is_identity_on_random_regular(
        n in 12usize..80,
        r in 3usize..6,
        seed in 0u64..10_000,
    ) {
        prop_assume!((n * r) % 2 == 0 && r < n);
        let mut gen_rng = ChaCha12Rng::seed_from_u64(seed ^ 0xFA17);
        let graph = generators::connected_random_regular(n, r, &mut gen_rng).unwrap();
        assert_all_processes_no_op(&graph, seed, 60);
    }

    /// Every process on 2-D tori (the poor-expander contrast family).
    #[test]
    fn zero_fault_wrapper_is_identity_on_torus(side in 3usize..9, seed in 0u64..10_000) {
        let graph = generators::torus_2d(side, side).unwrap();
        assert_all_processes_no_op(&graph, seed, 50);
    }

    /// Every process under arbitrary loss rates: the degenerate burst-length-1
    /// Gilbert–Elliott channel is bit-identical to i.i.d. drop on expanders…
    #[test]
    fn ge_burst_one_matches_iid_drop_on_random_regular(
        n in 12usize..64,
        r in 3usize..6,
        f in 0.01f64..0.6,
        seed in 0u64..10_000,
    ) {
        prop_assume!((n * r) % 2 == 0 && r < n);
        let mut gen_rng = ChaCha12Rng::seed_from_u64(seed ^ 0x6E01);
        let graph = generators::connected_random_regular(n, r, &mut gen_rng).unwrap();
        assert_all_processes_burst_one_degenerate(&graph, f, seed, 60);
    }

    /// …and on tori.
    #[test]
    fn ge_burst_one_matches_iid_drop_on_torus(
        side in 3usize..9,
        f in 0.01f64..0.6,
        seed in 0u64..10_000,
    ) {
        let graph = generators::torus_2d(side, side).unwrap();
        assert_all_processes_burst_one_degenerate(&graph, f, seed, 50);
    }
}

/// Fixed, deterministic smoke version on the acceptance instance family.
#[test]
fn zero_fault_wrapper_is_identity_on_a_fixed_expander() {
    let mut gen_rng = ChaCha12Rng::seed_from_u64(2016);
    let graph = generators::connected_random_regular(128, 8, &mut gen_rng).unwrap();
    for seed in 0..4u64 {
        assert_all_processes_no_op(&graph, seed, 150);
    }
}

/// Fixed, deterministic smoke for the burst-length-1 degeneracy, at the acceptance loss
/// rates of E9/E9b.
#[test]
fn ge_burst_one_matches_iid_drop_on_a_fixed_expander() {
    let mut gen_rng = ChaCha12Rng::seed_from_u64(2016);
    let graph = generators::connected_random_regular(128, 8, &mut gen_rng).unwrap();
    for (seed, f) in [(0u64, 0.05), (1, 0.1), (2, 0.25), (3, 0.4)] {
        assert_all_processes_burst_one_degenerate(&graph, f, seed, 150);
    }
}

// ---------------------------------------------------------------------------
// Draw-count sanitizer: the zero-draw benign-path invariant, asserted directly
// on the counts rather than indirectly through bit-identical trajectories.
// ---------------------------------------------------------------------------

use cobra::core::CountingRng;

/// Every benign wrapping draws **exactly** as many RNG words per round as the bare
/// process — the wrapper's fault hooks consume zero draws. Checked per round, for all
/// seven processes (including the data-dependent BIPS and contact draw patterns), on the
/// acceptance expander family.
#[test]
fn benign_wrappers_draw_exactly_zero_extra_words_per_round() {
    let mut gen_rng = ChaCha12Rng::seed_from_u64(2016);
    let graph = generators::connected_random_regular(64, 4, &mut gen_rng).unwrap();
    for spec in all_specs() {
        for wrapped_spec in zero_fault_wrappings(&spec) {
            for seed in 0..3u64 {
                let mut bare = spec.build(&graph).expect("reference process builds");
                let mut wrapped = wrapped_spec.build(&graph).expect("candidate process builds");
                let mut bare_rng = CountingRng::new(ChaCha12Rng::seed_from_u64(seed));
                let mut wrapped_rng = CountingRng::new(ChaCha12Rng::seed_from_u64(seed));
                for round in 1..=60 {
                    bare.step(&mut bare_rng);
                    wrapped.step(&mut wrapped_rng);
                    let expected = bare_rng.take_count();
                    assert_eq!(
                        wrapped_rng.take_count(),
                        expected,
                        "{wrapped_spec} seed {seed}: draw count diverged at round {round} \
                         (bare drew {expected})"
                    );
                    if bare.is_complete() {
                        break;
                    }
                }
            }
        }
    }
}

/// The draw arithmetic itself, in closed form, for the processes whose per-round count is
/// data-independent on a graph without isolated vertices: COBRA with fixed `k` draws
/// `k · |A_t|` words, PUSH draws `|informed_t|`, PUSH–PULL draws `n`, a single walk draws
/// `1`, `w` walks draw `w`. Asserted per round, bare and under every benign wrapping.
#[test]
fn per_round_draw_counts_match_closed_forms() {
    let mut gen_rng = ChaCha12Rng::seed_from_u64(2016);
    let graph = generators::connected_random_regular(48, 4, &mut gen_rng).unwrap();
    let n = graph.num_vertices() as u64;
    type ExpectedDraws = Box<dyn Fn(u64) -> u64>;
    let cases: Vec<(ProcessSpec, ExpectedDraws)> = vec![
        (ProcessSpec::cobra(2).unwrap(), Box::new(|active| 2 * active)),
        (ProcessSpec::cobra(3).unwrap(), Box::new(|active| 3 * active)),
        (ProcessSpec::push(), Box::new(|active| active)),
        (ProcessSpec::push_pull(), Box::new(move |_| n)),
        (ProcessSpec::random_walk(), Box::new(|_| 1)),
        (ProcessSpec::multiple_walks(5), Box::new(|_| 5)),
    ];
    for (spec, expected_draws) in &cases {
        let mut variants = vec![spec.clone()];
        variants.extend(zero_fault_wrappings(spec));
        for variant in variants {
            for seed in 0..3u64 {
                let mut process = variant.build(&graph).expect("process builds");
                let mut rng = CountingRng::new(ChaCha12Rng::seed_from_u64(seed));
                for round in 1..=50 {
                    let active_before = process.num_active() as u64;
                    process.step(&mut rng);
                    assert_eq!(
                        rng.take_count(),
                        expected_draws(active_before),
                        "{variant} seed {seed}: draw count off at round {round} \
                         ({active_before} active before the step)"
                    );
                    if process.is_complete() {
                        break;
                    }
                }
            }
        }
    }
}
