/root/repo/target/debug/examples/bvdv_herd-bed0f3c1ec524523.d: examples/bvdv_herd.rs

/root/repo/target/debug/examples/bvdv_herd-bed0f3c1ec524523: examples/bvdv_herd.rs

examples/bvdv_herd.rs:
