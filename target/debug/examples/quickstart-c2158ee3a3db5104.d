/root/repo/target/debug/examples/quickstart-c2158ee3a3db5104.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c2158ee3a3db5104: examples/quickstart.rs

examples/quickstart.rs:
