/root/repo/target/debug/examples/expander_cover_time-b2b13f31d5f28e12.d: examples/expander_cover_time.rs Cargo.toml

/root/repo/target/debug/examples/libexpander_cover_time-b2b13f31d5f28e12.rmeta: examples/expander_cover_time.rs Cargo.toml

examples/expander_cover_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
