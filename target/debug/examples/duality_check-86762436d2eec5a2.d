/root/repo/target/debug/examples/duality_check-86762436d2eec5a2.d: examples/duality_check.rs

/root/repo/target/debug/examples/duality_check-86762436d2eec5a2: examples/duality_check.rs

examples/duality_check.rs:
