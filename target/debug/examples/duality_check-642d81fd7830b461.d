/root/repo/target/debug/examples/duality_check-642d81fd7830b461.d: examples/duality_check.rs Cargo.toml

/root/repo/target/debug/examples/libduality_check-642d81fd7830b461.rmeta: examples/duality_check.rs Cargo.toml

examples/duality_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
