/root/repo/target/debug/examples/quickstart-87177ba0288adb00.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-87177ba0288adb00: examples/quickstart.rs

examples/quickstart.rs:
