/root/repo/target/debug/examples/grid_vs_expander-dcfe8e03ab75efe5.d: examples/grid_vs_expander.rs

/root/repo/target/debug/examples/grid_vs_expander-dcfe8e03ab75efe5: examples/grid_vs_expander.rs

examples/grid_vs_expander.rs:
