/root/repo/target/debug/examples/grid_vs_expander-6d24b4cd2550e538.d: examples/grid_vs_expander.rs Cargo.toml

/root/repo/target/debug/examples/libgrid_vs_expander-6d24b4cd2550e538.rmeta: examples/grid_vs_expander.rs Cargo.toml

examples/grid_vs_expander.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
