/root/repo/target/debug/examples/bvdv_herd-2520b9daa75fd8cf.d: examples/bvdv_herd.rs

/root/repo/target/debug/examples/bvdv_herd-2520b9daa75fd8cf: examples/bvdv_herd.rs

examples/bvdv_herd.rs:
