/root/repo/target/debug/examples/duality_check-70a781e043e156ea.d: examples/duality_check.rs

/root/repo/target/debug/examples/duality_check-70a781e043e156ea: examples/duality_check.rs

examples/duality_check.rs:
