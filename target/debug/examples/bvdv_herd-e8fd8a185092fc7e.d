/root/repo/target/debug/examples/bvdv_herd-e8fd8a185092fc7e.d: examples/bvdv_herd.rs Cargo.toml

/root/repo/target/debug/examples/libbvdv_herd-e8fd8a185092fc7e.rmeta: examples/bvdv_herd.rs Cargo.toml

examples/bvdv_herd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
