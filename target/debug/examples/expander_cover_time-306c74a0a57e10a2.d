/root/repo/target/debug/examples/expander_cover_time-306c74a0a57e10a2.d: examples/expander_cover_time.rs

/root/repo/target/debug/examples/expander_cover_time-306c74a0a57e10a2: examples/expander_cover_time.rs

examples/expander_cover_time.rs:
