/root/repo/target/debug/examples/grid_vs_expander-b0c325107d5946c3.d: examples/grid_vs_expander.rs

/root/repo/target/debug/examples/grid_vs_expander-b0c325107d5946c3: examples/grid_vs_expander.rs

examples/grid_vs_expander.rs:
