/root/repo/target/debug/examples/expander_cover_time-31751f2ed1f5bd4b.d: examples/expander_cover_time.rs

/root/repo/target/debug/examples/expander_cover_time-31751f2ed1f5bd4b: examples/expander_cover_time.rs

examples/expander_cover_time.rs:
