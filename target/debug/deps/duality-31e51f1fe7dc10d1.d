/root/repo/target/debug/deps/duality-31e51f1fe7dc10d1.d: crates/bench/benches/duality.rs Cargo.toml

/root/repo/target/debug/deps/libduality-31e51f1fe7dc10d1.rmeta: crates/bench/benches/duality.rs Cargo.toml

crates/bench/benches/duality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
