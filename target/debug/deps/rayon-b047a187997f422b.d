/root/repo/target/debug/deps/rayon-b047a187997f422b.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-b047a187997f422b.rlib: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-b047a187997f422b.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
