/root/repo/target/debug/deps/cobra_bench-d8b60010db875cf6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cobra_bench-d8b60010db875cf6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
