/root/repo/target/debug/deps/cobra_experiments-d6901e5260e45705.d: crates/experiments/src/lib.rs crates/experiments/src/driver.rs crates/experiments/src/exp_baselines.rs crates/experiments/src/exp_branching.rs crates/experiments/src/exp_cover.rs crates/experiments/src/exp_duality.rs crates/experiments/src/exp_gap.rs crates/experiments/src/exp_growth.rs crates/experiments/src/exp_infection.rs crates/experiments/src/exp_phases.rs crates/experiments/src/instances.rs crates/experiments/src/registry.rs crates/experiments/src/result.rs

/root/repo/target/debug/deps/cobra_experiments-d6901e5260e45705: crates/experiments/src/lib.rs crates/experiments/src/driver.rs crates/experiments/src/exp_baselines.rs crates/experiments/src/exp_branching.rs crates/experiments/src/exp_cover.rs crates/experiments/src/exp_duality.rs crates/experiments/src/exp_gap.rs crates/experiments/src/exp_growth.rs crates/experiments/src/exp_infection.rs crates/experiments/src/exp_phases.rs crates/experiments/src/instances.rs crates/experiments/src/registry.rs crates/experiments/src/result.rs

crates/experiments/src/lib.rs:
crates/experiments/src/driver.rs:
crates/experiments/src/exp_baselines.rs:
crates/experiments/src/exp_branching.rs:
crates/experiments/src/exp_cover.rs:
crates/experiments/src/exp_duality.rs:
crates/experiments/src/exp_gap.rs:
crates/experiments/src/exp_growth.rs:
crates/experiments/src/exp_infection.rs:
crates/experiments/src/exp_phases.rs:
crates/experiments/src/instances.rs:
crates/experiments/src/registry.rs:
crates/experiments/src/result.rs:
