/root/repo/target/debug/deps/proptests-fc39d17c0e0ea269.d: crates/graph/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-fc39d17c0e0ea269.rmeta: crates/graph/tests/proptests.rs Cargo.toml

crates/graph/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
