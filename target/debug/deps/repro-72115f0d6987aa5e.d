/root/repo/target/debug/deps/repro-72115f0d6987aa5e.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-72115f0d6987aa5e: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
