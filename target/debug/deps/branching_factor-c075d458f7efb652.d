/root/repo/target/debug/deps/branching_factor-c075d458f7efb652.d: crates/bench/benches/branching_factor.rs Cargo.toml

/root/repo/target/debug/deps/libbranching_factor-c075d458f7efb652.rmeta: crates/bench/benches/branching_factor.rs Cargo.toml

crates/bench/benches/branching_factor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
