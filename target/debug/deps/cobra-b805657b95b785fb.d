/root/repo/target/debug/deps/cobra-b805657b95b785fb.d: src/lib.rs

/root/repo/target/debug/deps/libcobra-b805657b95b785fb.rlib: src/lib.rs

/root/repo/target/debug/deps/libcobra-b805657b95b785fb.rmeta: src/lib.rs

src/lib.rs:
