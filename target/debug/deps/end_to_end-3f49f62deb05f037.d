/root/repo/target/debug/deps/end_to_end-3f49f62deb05f037.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3f49f62deb05f037: tests/end_to_end.rs

tests/end_to_end.rs:
