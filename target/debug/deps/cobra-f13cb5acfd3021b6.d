/root/repo/target/debug/deps/cobra-f13cb5acfd3021b6.d: src/lib.rs

/root/repo/target/debug/deps/cobra-f13cb5acfd3021b6: src/lib.rs

src/lib.rs:
