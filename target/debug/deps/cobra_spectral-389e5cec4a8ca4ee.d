/root/repo/target/debug/deps/cobra_spectral-389e5cec4a8ca4ee.d: crates/spectral/src/lib.rs crates/spectral/src/conductance.rs crates/spectral/src/dense.rs crates/spectral/src/lanczos.rs crates/spectral/src/mixing.rs crates/spectral/src/operator.rs crates/spectral/src/power.rs crates/spectral/src/profile.rs crates/spectral/src/tridiagonal.rs crates/spectral/src/error.rs Cargo.toml

/root/repo/target/debug/deps/libcobra_spectral-389e5cec4a8ca4ee.rmeta: crates/spectral/src/lib.rs crates/spectral/src/conductance.rs crates/spectral/src/dense.rs crates/spectral/src/lanczos.rs crates/spectral/src/mixing.rs crates/spectral/src/operator.rs crates/spectral/src/power.rs crates/spectral/src/profile.rs crates/spectral/src/tridiagonal.rs crates/spectral/src/error.rs Cargo.toml

crates/spectral/src/lib.rs:
crates/spectral/src/conductance.rs:
crates/spectral/src/dense.rs:
crates/spectral/src/lanczos.rs:
crates/spectral/src/mixing.rs:
crates/spectral/src/operator.rs:
crates/spectral/src/power.rs:
crates/spectral/src/profile.rs:
crates/spectral/src/tridiagonal.rs:
crates/spectral/src/error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
