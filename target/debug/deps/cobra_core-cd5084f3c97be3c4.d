/root/repo/target/debug/deps/cobra_core-cd5084f3c97be3c4.d: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/contact.rs crates/core/src/baselines/multiple_walks.rs crates/core/src/baselines/push.rs crates/core/src/baselines/random_walk.rs crates/core/src/bips.rs crates/core/src/cobra.rs crates/core/src/cover.rs crates/core/src/duality.rs crates/core/src/growth.rs crates/core/src/infection.rs crates/core/src/process.rs crates/core/src/sim.rs crates/core/src/spec.rs crates/core/src/theory.rs crates/core/src/error.rs

/root/repo/target/debug/deps/libcobra_core-cd5084f3c97be3c4.rlib: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/contact.rs crates/core/src/baselines/multiple_walks.rs crates/core/src/baselines/push.rs crates/core/src/baselines/random_walk.rs crates/core/src/bips.rs crates/core/src/cobra.rs crates/core/src/cover.rs crates/core/src/duality.rs crates/core/src/growth.rs crates/core/src/infection.rs crates/core/src/process.rs crates/core/src/sim.rs crates/core/src/spec.rs crates/core/src/theory.rs crates/core/src/error.rs

/root/repo/target/debug/deps/libcobra_core-cd5084f3c97be3c4.rmeta: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/contact.rs crates/core/src/baselines/multiple_walks.rs crates/core/src/baselines/push.rs crates/core/src/baselines/random_walk.rs crates/core/src/bips.rs crates/core/src/cobra.rs crates/core/src/cover.rs crates/core/src/duality.rs crates/core/src/growth.rs crates/core/src/infection.rs crates/core/src/process.rs crates/core/src/sim.rs crates/core/src/spec.rs crates/core/src/theory.rs crates/core/src/error.rs

crates/core/src/lib.rs:
crates/core/src/baselines/mod.rs:
crates/core/src/baselines/contact.rs:
crates/core/src/baselines/multiple_walks.rs:
crates/core/src/baselines/push.rs:
crates/core/src/baselines/random_walk.rs:
crates/core/src/bips.rs:
crates/core/src/cobra.rs:
crates/core/src/cover.rs:
crates/core/src/duality.rs:
crates/core/src/growth.rs:
crates/core/src/infection.rs:
crates/core/src/process.rs:
crates/core/src/sim.rs:
crates/core/src/spec.rs:
crates/core/src/theory.rs:
crates/core/src/error.rs:
