/root/repo/target/debug/deps/cobra_bench-1644d515cea7c508.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcobra_bench-1644d515cea7c508.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
