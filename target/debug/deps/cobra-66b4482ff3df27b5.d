/root/repo/target/debug/deps/cobra-66b4482ff3df27b5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcobra-66b4482ff3df27b5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
