/root/repo/target/debug/deps/phase_structure-a803daa12f0b2485.d: crates/bench/benches/phase_structure.rs Cargo.toml

/root/repo/target/debug/deps/libphase_structure-a803daa12f0b2485.rmeta: crates/bench/benches/phase_structure.rs Cargo.toml

crates/bench/benches/phase_structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
