/root/repo/target/debug/deps/rand_chacha-56fdf208101aa73a.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-56fdf208101aa73a.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-56fdf208101aa73a.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
