/root/repo/target/debug/deps/invariants-b4ff3237524d630c.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-b4ff3237524d630c: tests/invariants.rs

tests/invariants.rs:
