/root/repo/target/debug/deps/rand_chacha-8925ee9216d4f86a.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-8925ee9216d4f86a.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
