/root/repo/target/debug/deps/process_api-0c640c437adbd757.d: tests/process_api.rs

/root/repo/target/debug/deps/process_api-0c640c437adbd757: tests/process_api.rs

tests/process_api.rs:
