/root/repo/target/debug/deps/proptests-cc5bdf4c9415efbb.d: crates/graph/tests/proptests.rs

/root/repo/target/debug/deps/proptests-cc5bdf4c9415efbb: crates/graph/tests/proptests.rs

crates/graph/tests/proptests.rs:
