/root/repo/target/debug/deps/infection_time-085936f918ffef88.d: crates/bench/benches/infection_time.rs Cargo.toml

/root/repo/target/debug/deps/libinfection_time-085936f918ffef88.rmeta: crates/bench/benches/infection_time.rs Cargo.toml

crates/bench/benches/infection_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
