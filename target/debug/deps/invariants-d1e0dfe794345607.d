/root/repo/target/debug/deps/invariants-d1e0dfe794345607.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-d1e0dfe794345607.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
