/root/repo/target/debug/deps/cobra_core-451345d46e83323c.d: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/contact.rs crates/core/src/baselines/multiple_walks.rs crates/core/src/baselines/push.rs crates/core/src/baselines/random_walk.rs crates/core/src/bips.rs crates/core/src/cobra.rs crates/core/src/cover.rs crates/core/src/duality.rs crates/core/src/growth.rs crates/core/src/infection.rs crates/core/src/process.rs crates/core/src/sim.rs crates/core/src/spec.rs crates/core/src/theory.rs crates/core/src/error.rs Cargo.toml

/root/repo/target/debug/deps/libcobra_core-451345d46e83323c.rmeta: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/contact.rs crates/core/src/baselines/multiple_walks.rs crates/core/src/baselines/push.rs crates/core/src/baselines/random_walk.rs crates/core/src/bips.rs crates/core/src/cobra.rs crates/core/src/cover.rs crates/core/src/duality.rs crates/core/src/growth.rs crates/core/src/infection.rs crates/core/src/process.rs crates/core/src/sim.rs crates/core/src/spec.rs crates/core/src/theory.rs crates/core/src/error.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baselines/mod.rs:
crates/core/src/baselines/contact.rs:
crates/core/src/baselines/multiple_walks.rs:
crates/core/src/baselines/push.rs:
crates/core/src/baselines/random_walk.rs:
crates/core/src/bips.rs:
crates/core/src/cobra.rs:
crates/core/src/cover.rs:
crates/core/src/duality.rs:
crates/core/src/growth.rs:
crates/core/src/infection.rs:
crates/core/src/process.rs:
crates/core/src/sim.rs:
crates/core/src/spec.rs:
crates/core/src/theory.rs:
crates/core/src/error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
