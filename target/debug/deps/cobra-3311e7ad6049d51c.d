/root/repo/target/debug/deps/cobra-3311e7ad6049d51c.d: src/lib.rs

/root/repo/target/debug/deps/cobra-3311e7ad6049d51c: src/lib.rs

src/lib.rs:
