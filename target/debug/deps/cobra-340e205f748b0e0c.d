/root/repo/target/debug/deps/cobra-340e205f748b0e0c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcobra-340e205f748b0e0c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
