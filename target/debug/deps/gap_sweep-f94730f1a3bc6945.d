/root/repo/target/debug/deps/gap_sweep-f94730f1a3bc6945.d: crates/bench/benches/gap_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libgap_sweep-f94730f1a3bc6945.rmeta: crates/bench/benches/gap_sweep.rs Cargo.toml

crates/bench/benches/gap_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
