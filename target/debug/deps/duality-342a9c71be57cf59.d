/root/repo/target/debug/deps/duality-342a9c71be57cf59.d: tests/duality.rs

/root/repo/target/debug/deps/duality-342a9c71be57cf59: tests/duality.rs

tests/duality.rs:
