/root/repo/target/debug/deps/cobra_bench-292cce5b74181667.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcobra_bench-292cce5b74181667.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
