/root/repo/target/debug/deps/serde_json-3e40bfb672fe7157.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3e40bfb672fe7157.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
