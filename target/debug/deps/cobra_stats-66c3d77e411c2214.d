/root/repo/target/debug/deps/cobra_stats-66c3d77e411c2214.d: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/histogram.rs crates/stats/src/parallel.rs crates/stats/src/regression.rs crates/stats/src/rng.rs crates/stats/src/summary.rs crates/stats/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libcobra_stats-66c3d77e411c2214.rmeta: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/histogram.rs crates/stats/src/parallel.rs crates/stats/src/regression.rs crates/stats/src/rng.rs crates/stats/src/summary.rs crates/stats/src/table.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/ci.rs:
crates/stats/src/histogram.rs:
crates/stats/src/parallel.rs:
crates/stats/src/regression.rs:
crates/stats/src/rng.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
