/root/repo/target/debug/deps/cobra_experiments-f8d10f29c812fa90.d: crates/experiments/src/lib.rs crates/experiments/src/driver.rs crates/experiments/src/exp_baselines.rs crates/experiments/src/exp_branching.rs crates/experiments/src/exp_cover.rs crates/experiments/src/exp_duality.rs crates/experiments/src/exp_gap.rs crates/experiments/src/exp_growth.rs crates/experiments/src/exp_infection.rs crates/experiments/src/exp_phases.rs crates/experiments/src/instances.rs crates/experiments/src/registry.rs crates/experiments/src/result.rs Cargo.toml

/root/repo/target/debug/deps/libcobra_experiments-f8d10f29c812fa90.rmeta: crates/experiments/src/lib.rs crates/experiments/src/driver.rs crates/experiments/src/exp_baselines.rs crates/experiments/src/exp_branching.rs crates/experiments/src/exp_cover.rs crates/experiments/src/exp_duality.rs crates/experiments/src/exp_gap.rs crates/experiments/src/exp_growth.rs crates/experiments/src/exp_infection.rs crates/experiments/src/exp_phases.rs crates/experiments/src/instances.rs crates/experiments/src/registry.rs crates/experiments/src/result.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/driver.rs:
crates/experiments/src/exp_baselines.rs:
crates/experiments/src/exp_branching.rs:
crates/experiments/src/exp_cover.rs:
crates/experiments/src/exp_duality.rs:
crates/experiments/src/exp_gap.rs:
crates/experiments/src/exp_growth.rs:
crates/experiments/src/exp_infection.rs:
crates/experiments/src/exp_phases.rs:
crates/experiments/src/instances.rs:
crates/experiments/src/registry.rs:
crates/experiments/src/result.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
