/root/repo/target/debug/deps/cobra_stats-ddef5e256bddd971.d: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/histogram.rs crates/stats/src/parallel.rs crates/stats/src/regression.rs crates/stats/src/rng.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libcobra_stats-ddef5e256bddd971.rlib: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/histogram.rs crates/stats/src/parallel.rs crates/stats/src/regression.rs crates/stats/src/rng.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/libcobra_stats-ddef5e256bddd971.rmeta: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/histogram.rs crates/stats/src/parallel.rs crates/stats/src/regression.rs crates/stats/src/rng.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/ci.rs:
crates/stats/src/histogram.rs:
crates/stats/src/parallel.rs:
crates/stats/src/regression.rs:
crates/stats/src/rng.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
