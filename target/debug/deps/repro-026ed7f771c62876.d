/root/repo/target/debug/deps/repro-026ed7f771c62876.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-026ed7f771c62876: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
