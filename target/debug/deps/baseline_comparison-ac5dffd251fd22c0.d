/root/repo/target/debug/deps/baseline_comparison-ac5dffd251fd22c0.d: crates/bench/benches/baseline_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_comparison-ac5dffd251fd22c0.rmeta: crates/bench/benches/baseline_comparison.rs Cargo.toml

crates/bench/benches/baseline_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
