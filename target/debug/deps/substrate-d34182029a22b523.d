/root/repo/target/debug/deps/substrate-d34182029a22b523.d: crates/bench/benches/substrate.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate-d34182029a22b523.rmeta: crates/bench/benches/substrate.rs Cargo.toml

crates/bench/benches/substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
