/root/repo/target/debug/deps/cobra_spectral-e17e75339589259e.d: crates/spectral/src/lib.rs crates/spectral/src/conductance.rs crates/spectral/src/dense.rs crates/spectral/src/lanczos.rs crates/spectral/src/mixing.rs crates/spectral/src/operator.rs crates/spectral/src/power.rs crates/spectral/src/profile.rs crates/spectral/src/tridiagonal.rs crates/spectral/src/error.rs

/root/repo/target/debug/deps/libcobra_spectral-e17e75339589259e.rlib: crates/spectral/src/lib.rs crates/spectral/src/conductance.rs crates/spectral/src/dense.rs crates/spectral/src/lanczos.rs crates/spectral/src/mixing.rs crates/spectral/src/operator.rs crates/spectral/src/power.rs crates/spectral/src/profile.rs crates/spectral/src/tridiagonal.rs crates/spectral/src/error.rs

/root/repo/target/debug/deps/libcobra_spectral-e17e75339589259e.rmeta: crates/spectral/src/lib.rs crates/spectral/src/conductance.rs crates/spectral/src/dense.rs crates/spectral/src/lanczos.rs crates/spectral/src/mixing.rs crates/spectral/src/operator.rs crates/spectral/src/power.rs crates/spectral/src/profile.rs crates/spectral/src/tridiagonal.rs crates/spectral/src/error.rs

crates/spectral/src/lib.rs:
crates/spectral/src/conductance.rs:
crates/spectral/src/dense.rs:
crates/spectral/src/lanczos.rs:
crates/spectral/src/mixing.rs:
crates/spectral/src/operator.rs:
crates/spectral/src/power.rs:
crates/spectral/src/profile.rs:
crates/spectral/src/tridiagonal.rs:
crates/spectral/src/error.rs:
