/root/repo/target/debug/deps/rayon-c56399622574ac36.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-c56399622574ac36.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
