/root/repo/target/debug/deps/cobra_bench-69cdeb6915f58402.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcobra_bench-69cdeb6915f58402.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcobra_bench-69cdeb6915f58402.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
