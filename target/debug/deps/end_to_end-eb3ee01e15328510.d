/root/repo/target/debug/deps/end_to_end-eb3ee01e15328510.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-eb3ee01e15328510: tests/end_to_end.rs

tests/end_to_end.rs:
