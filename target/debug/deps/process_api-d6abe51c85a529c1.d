/root/repo/target/debug/deps/process_api-d6abe51c85a529c1.d: tests/process_api.rs Cargo.toml

/root/repo/target/debug/deps/libprocess_api-d6abe51c85a529c1.rmeta: tests/process_api.rs Cargo.toml

tests/process_api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
