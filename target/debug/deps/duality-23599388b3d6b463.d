/root/repo/target/debug/deps/duality-23599388b3d6b463.d: tests/duality.rs

/root/repo/target/debug/deps/duality-23599388b3d6b463: tests/duality.rs

tests/duality.rs:
