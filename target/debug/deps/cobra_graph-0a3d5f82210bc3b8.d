/root/repo/target/debug/deps/cobra_graph-0a3d5f82210bc3b8.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/error.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/basic.rs crates/graph/src/generators/circulant.rs crates/graph/src/generators/composite.rs crates/graph/src/generators/hypercube.rs crates/graph/src/generators/named.rs crates/graph/src/generators/random.rs crates/graph/src/generators/torus.rs crates/graph/src/generators/trees.rs crates/graph/src/io.rs crates/graph/src/ops.rs Cargo.toml

/root/repo/target/debug/deps/libcobra_graph-0a3d5f82210bc3b8.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/error.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/basic.rs crates/graph/src/generators/circulant.rs crates/graph/src/generators/composite.rs crates/graph/src/generators/hypercube.rs crates/graph/src/generators/named.rs crates/graph/src/generators/random.rs crates/graph/src/generators/torus.rs crates/graph/src/generators/trees.rs crates/graph/src/io.rs crates/graph/src/ops.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/error.rs:
crates/graph/src/generators/mod.rs:
crates/graph/src/generators/basic.rs:
crates/graph/src/generators/circulant.rs:
crates/graph/src/generators/composite.rs:
crates/graph/src/generators/hypercube.rs:
crates/graph/src/generators/named.rs:
crates/graph/src/generators/random.rs:
crates/graph/src/generators/torus.rs:
crates/graph/src/generators/trees.rs:
crates/graph/src/io.rs:
crates/graph/src/ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
