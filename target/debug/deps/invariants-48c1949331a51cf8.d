/root/repo/target/debug/deps/invariants-48c1949331a51cf8.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-48c1949331a51cf8: tests/invariants.rs

tests/invariants.rs:
