/root/repo/target/debug/deps/cover_time-ed1b9b695cd9a773.d: crates/bench/benches/cover_time.rs Cargo.toml

/root/repo/target/debug/deps/libcover_time-ed1b9b695cd9a773.rmeta: crates/bench/benches/cover_time.rs Cargo.toml

crates/bench/benches/cover_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
