/root/repo/target/debug/deps/growth_bound-be8135735692edc3.d: crates/bench/benches/growth_bound.rs Cargo.toml

/root/repo/target/debug/deps/libgrowth_bound-be8135735692edc3.rmeta: crates/bench/benches/growth_bound.rs Cargo.toml

crates/bench/benches/growth_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
