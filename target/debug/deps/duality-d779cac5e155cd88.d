/root/repo/target/debug/deps/duality-d779cac5e155cd88.d: tests/duality.rs Cargo.toml

/root/repo/target/debug/deps/libduality-d779cac5e155cd88.rmeta: tests/duality.rs Cargo.toml

tests/duality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
