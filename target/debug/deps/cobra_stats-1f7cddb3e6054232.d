/root/repo/target/debug/deps/cobra_stats-1f7cddb3e6054232.d: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/histogram.rs crates/stats/src/parallel.rs crates/stats/src/regression.rs crates/stats/src/rng.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/debug/deps/cobra_stats-1f7cddb3e6054232: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/histogram.rs crates/stats/src/parallel.rs crates/stats/src/regression.rs crates/stats/src/rng.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/ci.rs:
crates/stats/src/histogram.rs:
crates/stats/src/parallel.rs:
crates/stats/src/regression.rs:
crates/stats/src/rng.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
