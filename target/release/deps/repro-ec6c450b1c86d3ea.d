/root/repo/target/release/deps/repro-ec6c450b1c86d3ea.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-ec6c450b1c86d3ea: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
