/root/repo/target/release/deps/repro-79052538329ff918.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-79052538329ff918: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
