/root/repo/target/release/deps/cobra-292fe5201ce9430e.d: src/lib.rs

/root/repo/target/release/deps/cobra-292fe5201ce9430e: src/lib.rs

src/lib.rs:
