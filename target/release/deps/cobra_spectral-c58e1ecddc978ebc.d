/root/repo/target/release/deps/cobra_spectral-c58e1ecddc978ebc.d: crates/spectral/src/lib.rs crates/spectral/src/conductance.rs crates/spectral/src/dense.rs crates/spectral/src/lanczos.rs crates/spectral/src/mixing.rs crates/spectral/src/operator.rs crates/spectral/src/power.rs crates/spectral/src/profile.rs crates/spectral/src/tridiagonal.rs crates/spectral/src/error.rs

/root/repo/target/release/deps/libcobra_spectral-c58e1ecddc978ebc.rlib: crates/spectral/src/lib.rs crates/spectral/src/conductance.rs crates/spectral/src/dense.rs crates/spectral/src/lanczos.rs crates/spectral/src/mixing.rs crates/spectral/src/operator.rs crates/spectral/src/power.rs crates/spectral/src/profile.rs crates/spectral/src/tridiagonal.rs crates/spectral/src/error.rs

/root/repo/target/release/deps/libcobra_spectral-c58e1ecddc978ebc.rmeta: crates/spectral/src/lib.rs crates/spectral/src/conductance.rs crates/spectral/src/dense.rs crates/spectral/src/lanczos.rs crates/spectral/src/mixing.rs crates/spectral/src/operator.rs crates/spectral/src/power.rs crates/spectral/src/profile.rs crates/spectral/src/tridiagonal.rs crates/spectral/src/error.rs

crates/spectral/src/lib.rs:
crates/spectral/src/conductance.rs:
crates/spectral/src/dense.rs:
crates/spectral/src/lanczos.rs:
crates/spectral/src/mixing.rs:
crates/spectral/src/operator.rs:
crates/spectral/src/power.rs:
crates/spectral/src/profile.rs:
crates/spectral/src/tridiagonal.rs:
crates/spectral/src/error.rs:
