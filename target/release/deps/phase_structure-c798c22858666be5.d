/root/repo/target/release/deps/phase_structure-c798c22858666be5.d: crates/bench/benches/phase_structure.rs

/root/repo/target/release/deps/phase_structure-c798c22858666be5: crates/bench/benches/phase_structure.rs

crates/bench/benches/phase_structure.rs:
