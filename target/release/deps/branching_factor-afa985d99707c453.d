/root/repo/target/release/deps/branching_factor-afa985d99707c453.d: crates/bench/benches/branching_factor.rs

/root/repo/target/release/deps/branching_factor-afa985d99707c453: crates/bench/benches/branching_factor.rs

crates/bench/benches/branching_factor.rs:
