/root/repo/target/release/deps/cobra-f423ac73b1215c33.d: src/lib.rs

/root/repo/target/release/deps/libcobra-f423ac73b1215c33.rlib: src/lib.rs

/root/repo/target/release/deps/libcobra-f423ac73b1215c33.rmeta: src/lib.rs

src/lib.rs:
