/root/repo/target/release/deps/cobra_stats-87c730ca9fcda760.d: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/histogram.rs crates/stats/src/parallel.rs crates/stats/src/regression.rs crates/stats/src/rng.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/release/deps/libcobra_stats-87c730ca9fcda760.rlib: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/histogram.rs crates/stats/src/parallel.rs crates/stats/src/regression.rs crates/stats/src/rng.rs crates/stats/src/summary.rs crates/stats/src/table.rs

/root/repo/target/release/deps/libcobra_stats-87c730ca9fcda760.rmeta: crates/stats/src/lib.rs crates/stats/src/ci.rs crates/stats/src/histogram.rs crates/stats/src/parallel.rs crates/stats/src/regression.rs crates/stats/src/rng.rs crates/stats/src/summary.rs crates/stats/src/table.rs

crates/stats/src/lib.rs:
crates/stats/src/ci.rs:
crates/stats/src/histogram.rs:
crates/stats/src/parallel.rs:
crates/stats/src/regression.rs:
crates/stats/src/rng.rs:
crates/stats/src/summary.rs:
crates/stats/src/table.rs:
