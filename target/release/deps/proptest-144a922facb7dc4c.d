/root/repo/target/release/deps/proptest-144a922facb7dc4c.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-144a922facb7dc4c.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-144a922facb7dc4c.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
