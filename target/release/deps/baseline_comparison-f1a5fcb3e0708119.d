/root/repo/target/release/deps/baseline_comparison-f1a5fcb3e0708119.d: crates/bench/benches/baseline_comparison.rs

/root/repo/target/release/deps/baseline_comparison-f1a5fcb3e0708119: crates/bench/benches/baseline_comparison.rs

crates/bench/benches/baseline_comparison.rs:
