/root/repo/target/release/deps/cobra_graph-962458c6bbdd00d2.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/error.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/basic.rs crates/graph/src/generators/circulant.rs crates/graph/src/generators/composite.rs crates/graph/src/generators/hypercube.rs crates/graph/src/generators/named.rs crates/graph/src/generators/random.rs crates/graph/src/generators/torus.rs crates/graph/src/generators/trees.rs crates/graph/src/io.rs crates/graph/src/ops.rs

/root/repo/target/release/deps/libcobra_graph-962458c6bbdd00d2.rlib: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/error.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/basic.rs crates/graph/src/generators/circulant.rs crates/graph/src/generators/composite.rs crates/graph/src/generators/hypercube.rs crates/graph/src/generators/named.rs crates/graph/src/generators/random.rs crates/graph/src/generators/torus.rs crates/graph/src/generators/trees.rs crates/graph/src/io.rs crates/graph/src/ops.rs

/root/repo/target/release/deps/libcobra_graph-962458c6bbdd00d2.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/error.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/basic.rs crates/graph/src/generators/circulant.rs crates/graph/src/generators/composite.rs crates/graph/src/generators/hypercube.rs crates/graph/src/generators/named.rs crates/graph/src/generators/random.rs crates/graph/src/generators/torus.rs crates/graph/src/generators/trees.rs crates/graph/src/io.rs crates/graph/src/ops.rs

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/error.rs:
crates/graph/src/generators/mod.rs:
crates/graph/src/generators/basic.rs:
crates/graph/src/generators/circulant.rs:
crates/graph/src/generators/composite.rs:
crates/graph/src/generators/hypercube.rs:
crates/graph/src/generators/named.rs:
crates/graph/src/generators/random.rs:
crates/graph/src/generators/torus.rs:
crates/graph/src/generators/trees.rs:
crates/graph/src/io.rs:
crates/graph/src/ops.rs:
