/root/repo/target/release/deps/serde_json-e12cd4f244f4fb52.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-e12cd4f244f4fb52.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-e12cd4f244f4fb52.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
