/root/repo/target/release/deps/cover_time-5eea4dfd48222cd5.d: crates/bench/benches/cover_time.rs

/root/repo/target/release/deps/cover_time-5eea4dfd48222cd5: crates/bench/benches/cover_time.rs

crates/bench/benches/cover_time.rs:
