/root/repo/target/release/deps/substrate-33a217113f8d871b.d: crates/bench/benches/substrate.rs

/root/repo/target/release/deps/substrate-33a217113f8d871b: crates/bench/benches/substrate.rs

crates/bench/benches/substrate.rs:
