/root/repo/target/release/deps/cobra_experiments-f1aae5f4187a8e8a.d: crates/experiments/src/lib.rs crates/experiments/src/driver.rs crates/experiments/src/exp_baselines.rs crates/experiments/src/exp_branching.rs crates/experiments/src/exp_cover.rs crates/experiments/src/exp_duality.rs crates/experiments/src/exp_gap.rs crates/experiments/src/exp_growth.rs crates/experiments/src/exp_infection.rs crates/experiments/src/exp_phases.rs crates/experiments/src/instances.rs crates/experiments/src/registry.rs crates/experiments/src/result.rs

/root/repo/target/release/deps/libcobra_experiments-f1aae5f4187a8e8a.rlib: crates/experiments/src/lib.rs crates/experiments/src/driver.rs crates/experiments/src/exp_baselines.rs crates/experiments/src/exp_branching.rs crates/experiments/src/exp_cover.rs crates/experiments/src/exp_duality.rs crates/experiments/src/exp_gap.rs crates/experiments/src/exp_growth.rs crates/experiments/src/exp_infection.rs crates/experiments/src/exp_phases.rs crates/experiments/src/instances.rs crates/experiments/src/registry.rs crates/experiments/src/result.rs

/root/repo/target/release/deps/libcobra_experiments-f1aae5f4187a8e8a.rmeta: crates/experiments/src/lib.rs crates/experiments/src/driver.rs crates/experiments/src/exp_baselines.rs crates/experiments/src/exp_branching.rs crates/experiments/src/exp_cover.rs crates/experiments/src/exp_duality.rs crates/experiments/src/exp_gap.rs crates/experiments/src/exp_growth.rs crates/experiments/src/exp_infection.rs crates/experiments/src/exp_phases.rs crates/experiments/src/instances.rs crates/experiments/src/registry.rs crates/experiments/src/result.rs

crates/experiments/src/lib.rs:
crates/experiments/src/driver.rs:
crates/experiments/src/exp_baselines.rs:
crates/experiments/src/exp_branching.rs:
crates/experiments/src/exp_cover.rs:
crates/experiments/src/exp_duality.rs:
crates/experiments/src/exp_gap.rs:
crates/experiments/src/exp_growth.rs:
crates/experiments/src/exp_infection.rs:
crates/experiments/src/exp_phases.rs:
crates/experiments/src/instances.rs:
crates/experiments/src/registry.rs:
crates/experiments/src/result.rs:
