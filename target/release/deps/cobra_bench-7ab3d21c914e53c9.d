/root/repo/target/release/deps/cobra_bench-7ab3d21c914e53c9.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/cobra_bench-7ab3d21c914e53c9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
