/root/repo/target/release/deps/duality-bc5ece4b77445b3c.d: crates/bench/benches/duality.rs

/root/repo/target/release/deps/duality-bc5ece4b77445b3c: crates/bench/benches/duality.rs

crates/bench/benches/duality.rs:
