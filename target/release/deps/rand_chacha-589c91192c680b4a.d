/root/repo/target/release/deps/rand_chacha-589c91192c680b4a.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-589c91192c680b4a.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-589c91192c680b4a.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
