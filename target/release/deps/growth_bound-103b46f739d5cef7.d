/root/repo/target/release/deps/growth_bound-103b46f739d5cef7.d: crates/bench/benches/growth_bound.rs

/root/repo/target/release/deps/growth_bound-103b46f739d5cef7: crates/bench/benches/growth_bound.rs

crates/bench/benches/growth_bound.rs:
