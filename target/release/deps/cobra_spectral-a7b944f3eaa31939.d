/root/repo/target/release/deps/cobra_spectral-a7b944f3eaa31939.d: crates/spectral/src/lib.rs crates/spectral/src/conductance.rs crates/spectral/src/dense.rs crates/spectral/src/lanczos.rs crates/spectral/src/mixing.rs crates/spectral/src/operator.rs crates/spectral/src/power.rs crates/spectral/src/profile.rs crates/spectral/src/tridiagonal.rs crates/spectral/src/error.rs

/root/repo/target/release/deps/cobra_spectral-a7b944f3eaa31939: crates/spectral/src/lib.rs crates/spectral/src/conductance.rs crates/spectral/src/dense.rs crates/spectral/src/lanczos.rs crates/spectral/src/mixing.rs crates/spectral/src/operator.rs crates/spectral/src/power.rs crates/spectral/src/profile.rs crates/spectral/src/tridiagonal.rs crates/spectral/src/error.rs

crates/spectral/src/lib.rs:
crates/spectral/src/conductance.rs:
crates/spectral/src/dense.rs:
crates/spectral/src/lanczos.rs:
crates/spectral/src/mixing.rs:
crates/spectral/src/operator.rs:
crates/spectral/src/power.rs:
crates/spectral/src/profile.rs:
crates/spectral/src/tridiagonal.rs:
crates/spectral/src/error.rs:
