/root/repo/target/release/deps/gap_sweep-b49979f66afaabed.d: crates/bench/benches/gap_sweep.rs

/root/repo/target/release/deps/gap_sweep-b49979f66afaabed: crates/bench/benches/gap_sweep.rs

crates/bench/benches/gap_sweep.rs:
