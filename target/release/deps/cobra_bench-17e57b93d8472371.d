/root/repo/target/release/deps/cobra_bench-17e57b93d8472371.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcobra_bench-17e57b93d8472371.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcobra_bench-17e57b93d8472371.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
