/root/repo/target/release/deps/cobra_core-3b6abfc2262b3b88.d: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/contact.rs crates/core/src/baselines/multiple_walks.rs crates/core/src/baselines/push.rs crates/core/src/baselines/random_walk.rs crates/core/src/bips.rs crates/core/src/cobra.rs crates/core/src/cover.rs crates/core/src/duality.rs crates/core/src/growth.rs crates/core/src/infection.rs crates/core/src/process.rs crates/core/src/sim.rs crates/core/src/spec.rs crates/core/src/theory.rs crates/core/src/error.rs

/root/repo/target/release/deps/cobra_core-3b6abfc2262b3b88: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/contact.rs crates/core/src/baselines/multiple_walks.rs crates/core/src/baselines/push.rs crates/core/src/baselines/random_walk.rs crates/core/src/bips.rs crates/core/src/cobra.rs crates/core/src/cover.rs crates/core/src/duality.rs crates/core/src/growth.rs crates/core/src/infection.rs crates/core/src/process.rs crates/core/src/sim.rs crates/core/src/spec.rs crates/core/src/theory.rs crates/core/src/error.rs

crates/core/src/lib.rs:
crates/core/src/baselines/mod.rs:
crates/core/src/baselines/contact.rs:
crates/core/src/baselines/multiple_walks.rs:
crates/core/src/baselines/push.rs:
crates/core/src/baselines/random_walk.rs:
crates/core/src/bips.rs:
crates/core/src/cobra.rs:
crates/core/src/cover.rs:
crates/core/src/duality.rs:
crates/core/src/growth.rs:
crates/core/src/infection.rs:
crates/core/src/process.rs:
crates/core/src/sim.rs:
crates/core/src/spec.rs:
crates/core/src/theory.rs:
crates/core/src/error.rs:
