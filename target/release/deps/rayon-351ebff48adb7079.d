/root/repo/target/release/deps/rayon-351ebff48adb7079.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-351ebff48adb7079.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-351ebff48adb7079.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
