/root/repo/target/release/deps/infection_time-a3135f028e3dceae.d: crates/bench/benches/infection_time.rs

/root/repo/target/release/deps/infection_time-a3135f028e3dceae: crates/bench/benches/infection_time.rs

crates/bench/benches/infection_time.rs:
