/root/repo/target/release/examples/quickstart-b01a1b1643791b80.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-b01a1b1643791b80: examples/quickstart.rs

examples/quickstart.rs:
